#include "placement/planner.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ecstore {
namespace {

/// Validates the structural constraints Eq. 2 imposes: every demand gets
/// exactly `needed` distinct chunks, each from its candidate set.
void CheckPlanValid(const AccessPlan& plan, std::span<const BlockDemand> demands) {
  std::map<BlockId, std::vector<ChunkRead>> by_block;
  for (const ChunkRead& read : plan.reads) by_block[read.block].push_back(read);
  ASSERT_EQ(by_block.size(), demands.size());
  for (const BlockDemand& d : demands) {
    const auto& reads = by_block[d.block];
    EXPECT_EQ(reads.size(), d.needed) << "block " << d.block;
    std::set<SiteId> sites;
    for (const ChunkRead& read : reads) {
      EXPECT_TRUE(sites.insert(read.site).second) << "duplicate site";
      const bool is_candidate = std::any_of(
          d.candidates.begin(), d.candidates.end(), [&](const ChunkLocation& c) {
            return c.site == read.site && c.chunk == read.chunk;
          });
      EXPECT_TRUE(is_candidate) << "read not in candidate set";
    }
  }
}

  // Sites 0..5. Blocks 1 and 2 overlap on sites {2, 3}: co-located access
  // is possible and the optimal plan should use exactly those two sites.
void PopulateCoLocationState(ClusterState& state) {
  state.AddBlock(1, 100, 50, 2, 2, std::vector<SiteId>{0, 1, 2, 3});
  state.AddBlock(2, 100, 50, 2, 2, std::vector<SiteId>{2, 3, 4, 5});
}

TEST(RandomPlanTest, SatisfiesDemands) {
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1, 2};
  const DemandResult dr = BuildDemands(state, q, 0);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const AccessPlan plan = RandomPlan(dr.demands, rng);
    CheckPlanValid(plan, dr.demands);
  }
}

TEST(RandomPlanTest, ActuallyRandomizes) {
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1};
  const DemandResult dr = BuildDemands(state, q, 0);
  Rng rng(2);
  std::set<std::pair<SiteId, SiteId>> seen;
  for (int trial = 0; trial < 100; ++trial) {
    const AccessPlan plan = RandomPlan(dr.demands, rng);
    SiteId a = plan.reads[0].site, b = plan.reads[1].site;
    if (a > b) std::swap(a, b);
    seen.insert({a, b});
  }
  EXPECT_GT(seen.size(), 3u);  // C(4,2) = 6 possibilities; most appear.
}

TEST(GreedyPlanTest, SatisfiesDemands) {
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1, 2};
  const DemandResult dr = BuildDemands(state, q, 0);
  Rng rng(3);
  const AccessPlan plan = GreedyPlan(dr.demands, CostParams::Homogeneous(6, 5, 0.01), rng);
  CheckPlanValid(plan, dr.demands);
  EXPECT_FALSE(plan.optimal);
}

TEST(GreedyPlanTest, ReusesAccessedSites) {
  // Once block 1 accesses some sites, block 2 should prefer the overlap
  // {2, 3} whenever block 1 happened to pick those.
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1, 2};
  const DemandResult dr = BuildDemands(state, q, 0);
  const CostParams params = CostParams::Homogeneous(6, 5, 0.01);
  Rng rng(4);
  int reused = 0, trials = 200;
  for (int t = 0; t < trials; ++t) {
    const AccessPlan plan = GreedyPlan(dr.demands, params, rng);
    std::set<SiteId> sites;
    for (const auto& read : plan.reads) sites.insert(read.site);
    if (sites.size() < 4) ++reused;
  }
  // Random choice for block 1 picks at least one of {2,3} with
  // probability 5/6; greedy then reuses it. Expect strong reuse.
  EXPECT_GT(reused, trials / 2);
}

TEST(IlpPlanTest, FindsCoLocatedOptimum) {
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1, 2};
  const DemandResult dr = BuildDemands(state, q, 0);
  const CostParams params = CostParams::Homogeneous(6, 5, 0.01);
  const auto plan = IlpPlan(dr.demands, params);
  ASSERT_TRUE(plan.has_value());
  CheckPlanValid(*plan, dr.demands);
  EXPECT_TRUE(plan->optimal);
  // Optimal: sites {2,3} shared => cost = 2*5 + 4*0.01*50 = 12.
  EXPECT_NEAR(plan->estimated_cost_ms, 12.0, 1e-9);
  std::set<SiteId> sites;
  for (const auto& read : plan->reads) sites.insert(read.site);
  EXPECT_EQ(sites, (std::set<SiteId>{2, 3}));
}

TEST(IlpPlanTest, AvoidsExpensiveSite) {
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1};
  const DemandResult dr = BuildDemands(state, q, 0);
  CostParams params = CostParams::Homogeneous(6, 5, 0.01);
  params.site_overhead_ms[2] = 100.0;  // Overloaded site (Fig. 2's S5).
  const auto plan = IlpPlan(dr.demands, params);
  ASSERT_TRUE(plan.has_value());
  for (const auto& read : plan->reads) EXPECT_NE(read.site, 2u);
}

TEST(IlpPlanTest, MatchesExhaustiveOnRandomInstances) {
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    // Random state: 8 sites, 3 blocks RS(2,2), random placement.
    ClusterState state(8);
    for (BlockId b = 1; b <= 3; ++b) {
      state.AddBlock(b, 100, 50, 2, 2, state.PickRandomSites(rng, 4));
    }
    const std::vector<BlockId> q = {1, 2, 3};
    const DemandResult dr = BuildDemands(state, q, 0);
    CostParams params = CostParams::Homogeneous(8, 5, 0.01);
    // Random per-site overheads to vary the optimum.
    for (auto& o : params.site_overhead_ms) o = 1.0 + rng.NextDouble() * 9.0;

    const auto ilp = IlpPlan(dr.demands, params);
    const AccessPlan brute = ExhaustivePlan(dr.demands, params);
    ASSERT_TRUE(ilp.has_value()) << "trial " << trial;
    EXPECT_NEAR(ilp->estimated_cost_ms, brute.estimated_cost_ms, 1e-6)
        << "trial " << trial;
    CheckPlanValid(*ilp, dr.demands);
  }
}

TEST(IlpPlanTest, LateBindingDemandsExtraChunks) {
  ClusterState state(6);
  PopulateCoLocationState(state);
  const std::vector<BlockId> q = {1};
  const DemandResult dr = BuildDemands(state, q, 1);  // delta = 1.
  const auto plan = IlpPlan(dr.demands, CostParams::Homogeneous(6, 5, 0.01));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->reads.size(), 3u);  // k + delta.
}

TEST(IlpPlanTest, InsufficientCandidatesReturnsNull) {
  std::vector<BlockDemand> demands(1);
  demands[0].block = 1;
  demands[0].needed = 3;
  demands[0].chunk_bytes = 10;
  demands[0].candidates = {{0, 0}, {1, 1}};  // Only 2 available.
  EXPECT_FALSE(IlpPlan(demands, CostParams::Homogeneous(2, 5, 0.01)).has_value());
}

TEST(IlpPlanTest, EmptyQueryYieldsEmptyPlan) {
  const std::vector<BlockDemand> demands;
  const auto plan = IlpPlan(demands, CostParams::Homogeneous(2, 5, 0.01));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->reads.empty());
  EXPECT_DOUBLE_EQ(plan->estimated_cost_ms, 0.0);
}

TEST(ExhaustivePlanTest, SingleBlockPicksCheapestSites) {
  ClusterState state(4);
  state.AddBlock(1, 100, 50, 2, 1, std::vector<SiteId>{0, 1, 2});
  const std::vector<BlockId> q = {1};
  const DemandResult dr = BuildDemands(state, q, 0);
  CostParams params = CostParams::Homogeneous(4, 5, 0.01);
  params.site_overhead_ms = {1.0, 10.0, 2.0, 5.0};
  const AccessPlan plan = ExhaustivePlan(dr.demands, params);
  std::set<SiteId> sites;
  for (const auto& read : plan.reads) sites.insert(read.site);
  EXPECT_EQ(sites, (std::set<SiteId>{0, 2}));
}

TEST(ExhaustivePlanTest, ReplicationStylePicksOneSite) {
  // k = 1, three replica sites: optimal = single cheapest site.
  ClusterState state(4);
  state.AddBlock(7, 100, 100, 1, 2, std::vector<SiteId>{0, 1, 3});
  const std::vector<BlockId> q = {7};
  const DemandResult dr = BuildDemands(state, q, 0);
  CostParams params = CostParams::Homogeneous(4, 5, 0.01);
  params.site_overhead_ms[0] = 20;
  params.site_overhead_ms[1] = 3;
  const AccessPlan plan = ExhaustivePlan(dr.demands, params);
  ASSERT_EQ(plan.reads.size(), 1u);
  EXPECT_EQ(plan.reads[0].site, 1u);
}

// Parameterized sweep: ILP equals exhaustive across query sizes and
// deltas (the IV-B1 late-binding variant included).
class PlannerSweepTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(PlannerSweepTest, IlpMatchesExhaustive) {
  const auto [num_blocks, delta] = GetParam();
  Rng rng(100 + num_blocks * 10 + delta);
  ClusterState state(8);
  for (BlockId b = 0; b < static_cast<BlockId>(num_blocks); ++b) {
    state.AddBlock(b, 100, 50, 2, 2, state.PickRandomSites(rng, 4));
  }
  std::vector<BlockId> q;
  for (BlockId b = 0; b < static_cast<BlockId>(num_blocks); ++b) q.push_back(b);
  const DemandResult dr = BuildDemands(state, q, delta);
  CostParams params = CostParams::Homogeneous(8, 5, 0.01);
  for (auto& o : params.site_overhead_ms) o = 1.0 + rng.NextDouble() * 9.0;
  const auto ilp = IlpPlan(dr.demands, params);
  const AccessPlan brute = ExhaustivePlan(dr.demands, params);
  ASSERT_TRUE(ilp.has_value());
  EXPECT_NEAR(ilp->estimated_cost_ms, brute.estimated_cost_ms, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    QueryShapes, PlannerSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0u, 1u, 2u)));

// Greedy is never better than the ILP optimum, and random is never
// better than greedy *on average* — the ordering Fig. 4b depends on.
TEST(PlannerComparisonTest, CostOrderingHolds) {
  Rng rng(77);
  double random_total = 0, greedy_total = 0, ilp_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    ClusterState state(10);
    for (BlockId b = 0; b < 4; ++b) {
      state.AddBlock(b, 100, 50, 2, 2, state.PickRandomSites(rng, 4));
    }
    const std::vector<BlockId> q = {0, 1, 2, 3};
    const DemandResult dr = BuildDemands(state, q, 0);
    CostParams params = CostParams::Homogeneous(10, 5, 0.01);
    const AccessPlan random = RandomPlan(dr.demands, rng);
    const AccessPlan greedy = GreedyPlan(dr.demands, params, rng);
    const auto ilp = IlpPlan(dr.demands, params);
    ASSERT_TRUE(ilp.has_value());
    const double random_cost = PlanCost(random.reads, dr.demands, params);
    EXPECT_GE(random_cost + 1e-9, ilp->estimated_cost_ms);
    EXPECT_GE(greedy.estimated_cost_ms + 1e-9, ilp->estimated_cost_ms);
    random_total += random_cost;
    greedy_total += greedy.estimated_cost_ms;
    ilp_total += ilp->estimated_cost_ms;
  }
  EXPECT_LT(ilp_total, greedy_total);
  EXPECT_LT(greedy_total, random_total);
}

}  // namespace
}  // namespace ecstore
