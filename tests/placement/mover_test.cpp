#include "placement/mover.h"

#include <gtest/gtest.h>

namespace ecstore {
namespace {

/// Fixture reproducing the paper's Fig. 2 scenario: blocks A and B are
/// co-accessed; A has a chunk on an overloaded site; moving it to a site
/// holding B's chunks both improves co-location and sheds load.
class MoverFixture : public ::testing::Test {
 protected:
  MoverFixture()
      : state_(6),
        co_access_(100),
        load_(6),
        params_(CostParams::Homogeneous(6, 5.0, 0.0001)) {
    // Block A (id 1): RS(2,1) chunks at sites 1, 2, 4. Site 4 is "S5".
    state_.AddBlock(1, 100 * 1024, 50 * 1024, 2, 1, std::vector<SiteId>{1, 2, 4});
    // Block B (id 2): RS(2,1) chunks at sites 0, 2, 3.
    state_.AddBlock(2, 100 * 1024, 50 * 1024, 2, 1, std::vector<SiteId>{0, 2, 3});
    // Popular block H (id 3) on site 4 keeps it hot.
    state_.AddBlock(3, 100 * 1024, 50 * 1024, 2, 1, std::vector<SiteId>{4, 5, 0});

    // A and B always accessed together; H accessed alone very often.
    for (int i = 0; i < 40; ++i) {
      co_access_.RecordRequest(std::vector<BlockId>{1, 2});
      co_access_.RecordRequest(std::vector<BlockId>{3});
    }

    // Site 4 overloaded; others lightly loaded.
    for (SiteId s = 0; s < 6; ++s) {
      load_.RecordReport(s, s == 4 ? 0.9 : 0.2, 0, 0);
      load_.RecordProbe(s, s == 4 ? 20.0 : 5.0);
    }
    ctx_.state = &state_;
    ctx_.co_access = &co_access_;
    ctx_.load = &load_;
    ctx_.cost_params = &params_;
    ctx_.request_rate_per_sec = 100;
  }

  ClusterState state_;
  CoAccessTracker co_access_;
  LoadTracker load_;
  CostParams params_;
  MoverContext ctx_;
};

TEST_F(MoverFixture, AccessGainPositiveForCoLocatingMove) {
  // Moving A's chunk from hot site 4 to site 3 (which holds B) lets the
  // pair {A, B} be read from two sites instead of three.
  const double gain = EstimateAccessGain(ctx_, 1, 4, 3, 10);
  EXPECT_GT(gain, 0.0);
}

TEST_F(MoverFixture, AccessGainNegativeForSpreadingMove) {
  // Moving A's chunk from site 2 (shared with B) to empty site 5 can only
  // hurt co-located access.
  const double gain = EstimateAccessGain(ctx_, 1, 2, 5, 10);
  EXPECT_LE(gain, 1e-12);
}

TEST_F(MoverFixture, LoadGainPositiveWhenSheddingHotSite) {
  const double gain = EstimateLoadGain(ctx_, 1, 4, 3);
  EXPECT_GT(gain, 0.0);
}

TEST_F(MoverFixture, LoadGainNegativeWhenLoadingHotSite) {
  // Moving B's chunk from a cool site onto hot site 4's neighborhood:
  // destination 4 is not valid for B? Site 4 holds no chunk of block 2,
  // so the move is legal but load-harmful.
  const double gain = EstimateLoadGain(ctx_, 2, 0, 4);
  EXPECT_LT(gain, 0.0);
}

TEST_F(MoverFixture, MovementScoreCombinesWithWeights) {
  MoverParams mp;
  mp.w1 = 1.0;
  mp.w2 = 3.0;
  const double e = EstimateAccessGain(ctx_, 1, 4, 3, mp.max_partners);
  const double i = EstimateLoadGain(ctx_, 1, 4, 3);
  EXPECT_NEAR(MovementScore(ctx_, 1, 4, 3, mp), e + 3.0 * i, 1e-9);
}

TEST_F(MoverFixture, SelectsTheFig2Move) {
  MoverParams mp;
  mp.candidate_blocks = 3;
  Rng rng(1);
  const auto plan = SelectMovementPlan(ctx_, mp, rng);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->score, 0.0);
  // The strongest single-chunk move in this scenario relocates a chunk
  // off the overloaded site 4.
  EXPECT_EQ(plan->source, 4u);
  // And the state accepts it.
  EXPECT_TRUE(state_.MoveChunk(plan->block, plan->source, plan->destination));
}

TEST_F(MoverFixture, NeverProposesIllegalDestination) {
  MoverParams mp;
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto plan = SelectMovementPlan(ctx_, mp, rng);
    if (!plan) continue;
    EXPECT_FALSE(state_.HasChunkAt(plan->block, plan->destination));
    EXPECT_TRUE(state_.HasChunkAt(plan->block, plan->source));
  }
}

TEST_F(MoverFixture, RespectsUnavailableSites) {
  state_.SetSiteAvailable(3, false);
  MoverParams mp;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto plan = SelectMovementPlan(ctx_, mp, rng);
    if (!plan) continue;
    EXPECT_NE(plan->destination, 3u);
  }
}

TEST_F(MoverFixture, EarlyStoppingBoundsEvaluations) {
  MoverParams mp;
  mp.max_evaluations = 1;  // Degenerate budget still returns cleanly.
  Rng rng(4);
  const auto plan = SelectMovementPlan(ctx_, mp, rng);
  // With one evaluation we may or may not find a positive-score plan;
  // either outcome is acceptable, but no crash/hang.
  if (plan) EXPECT_GT(plan->score, 0.0);
}

TEST(MoverEdgeTest, NoStatisticsMeansNoPlan) {
  ClusterState state(4);
  state.AddBlock(1, 100, 50, 2, 1, std::vector<SiteId>{0, 1, 2});
  CoAccessTracker co(10);
  LoadTracker load(4);
  CostParams params = CostParams::Homogeneous(4, 5.0, 0.001);
  MoverContext ctx{&state, &co, &load, &params, 0};
  MoverParams mp;
  Rng rng(5);
  // No requests recorded: candidate sampling returns nothing.
  EXPECT_FALSE(SelectMovementPlan(ctx, mp, rng).has_value());
}

TEST(MoverEdgeTest, BalancedIdleSystemProposesNoLoadMove) {
  // All sites equally loaded, one isolated block accessed alone: no move
  // should look beneficial (E = 0 for sole block at equal o_j; I = 0).
  ClusterState state(4);
  state.AddBlock(1, 100, 50, 2, 1, std::vector<SiteId>{0, 1, 2});
  CoAccessTracker co(10);
  for (int i = 0; i < 5; ++i) co.RecordRequest(std::vector<BlockId>{1});
  LoadTracker load(4);
  for (SiteId s = 0; s < 4; ++s) load.RecordReport(s, 0.5, 0, 0);
  CostParams params = CostParams::Homogeneous(4, 5.0, 0.001);
  MoverContext ctx{&state, &co, &load, &params, 10};
  MoverParams mp;
  Rng rng(6);
  const auto plan = SelectMovementPlan(ctx, mp, rng);
  EXPECT_FALSE(plan.has_value());
}

TEST(MoverEdgeTest, SoloBlockMovesTowardCheaperSite) {
  // Even without co-access partners, E includes the solo query. With two
  // of the block's three chunk sites expensive, the optimal plan must
  // touch one expensive site; relocating a chunk to a cheap site frees it.
  ClusterState state(4);
  state.AddBlock(1, 100 * 1024, 50 * 1024, 2, 1, std::vector<SiteId>{0, 1, 2});
  CoAccessTracker co(10);
  for (int i = 0; i < 5; ++i) co.RecordRequest(std::vector<BlockId>{1});
  LoadTracker load(4);
  CostParams params = CostParams::Homogeneous(4, 5.0, 0.0001);
  params.site_overhead_ms[0] = 50.0;
  params.site_overhead_ms[1] = 50.0;
  MoverContext ctx{&state, &co, &load, &params, 10};
  const double gain = EstimateAccessGain(ctx, 1, 0, 3, 5);
  EXPECT_NEAR(gain, 45.0, 1e-9);  // o drops from 50 to 5 for one site.

  // When the optimal plan already avoids the single expensive site, the
  // move is correctly judged worthless.
  params.site_overhead_ms[1] = 5.0;
  EXPECT_NEAR(EstimateAccessGain(ctx, 1, 0, 3, 5), 0.0, 1e-9);
}

}  // namespace
}  // namespace ecstore
