#include "placement/plan_cache.h"

#include <gtest/gtest.h>

namespace ecstore {
namespace {

AccessPlan PlanWithCost(double cost) {
  AccessPlan p;
  p.estimated_cost_ms = cost;
  p.optimal = true;
  return p;
}

TEST(PlanCacheTest, MissOnEmpty) {
  PlanCache cache;
  const std::vector<BlockId> q = {1, 2};
  EXPECT_FALSE(cache.Lookup(q, 0).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PlanCacheTest, InsertThenHit) {
  PlanCache cache;
  const std::vector<BlockId> q = {1, 2};
  cache.Insert(q, 0, PlanWithCost(7.0));
  const auto hit = cache.Lookup(q, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->estimated_cost_ms, 7.0);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCacheTest, KeyIsOrderInsensitive) {
  PlanCache cache;
  const std::vector<BlockId> q1 = {1, 2, 3};
  const std::vector<BlockId> q2 = {3, 1, 2};
  cache.Insert(q1, 0, PlanWithCost(1.0));
  EXPECT_TRUE(cache.Lookup(q2, 0).has_value());
}

TEST(PlanCacheTest, KeyCollapsesDuplicates) {
  PlanCache cache;
  const std::vector<BlockId> q1 = {1, 1, 2};
  const std::vector<BlockId> q2 = {1, 2};
  cache.Insert(q1, 0, PlanWithCost(1.0));
  EXPECT_TRUE(cache.Lookup(q2, 0).has_value());
}

TEST(PlanCacheTest, DeltaDistinguishesEntries) {
  PlanCache cache;
  const std::vector<BlockId> q = {1};
  cache.Insert(q, 0, PlanWithCost(1.0));
  EXPECT_FALSE(cache.Lookup(q, 1).has_value());  // Late-binding variant.
  cache.Insert(q, 1, PlanWithCost(2.0));
  EXPECT_DOUBLE_EQ(cache.Lookup(q, 0)->estimated_cost_ms, 1.0);
  EXPECT_DOUBLE_EQ(cache.Lookup(q, 1)->estimated_cost_ms, 2.0);
}

TEST(PlanCacheTest, InsertReplaces) {
  PlanCache cache;
  const std::vector<BlockId> q = {5};
  cache.Insert(q, 0, PlanWithCost(1.0));
  cache.Insert(q, 0, PlanWithCost(9.0));  // Background ILP upgrade.
  EXPECT_DOUBLE_EQ(cache.Lookup(q, 0)->estimated_cost_ms, 9.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, InvalidateBlockDropsOnlyInvolvedPlans) {
  PlanCache cache;
  const std::vector<BlockId> q12 = {1, 2};
  const std::vector<BlockId> q13 = {1, 3};
  const std::vector<BlockId> q45 = {4, 5};
  cache.Insert(q12, 0, PlanWithCost(1.0));
  cache.Insert(q13, 0, PlanWithCost(2.0));
  cache.Insert(q45, 0, PlanWithCost(3.0));
  cache.InvalidateBlock(1);  // A chunk of block 1 moved.
  EXPECT_FALSE(cache.Lookup(q12, 0).has_value());
  EXPECT_FALSE(cache.Lookup(q13, 0).has_value());
  EXPECT_TRUE(cache.Lookup(q45, 0).has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, InvalidateUnknownBlockIsNoop) {
  PlanCache cache;
  const std::vector<BlockId> q = {1};
  cache.Insert(q, 0, PlanWithCost(1.0));
  cache.InvalidateBlock(99);
  EXPECT_TRUE(cache.Lookup(q, 0).has_value());
}

TEST(PlanCacheTest, BumpEpochClearsAll) {
  PlanCache cache;
  for (BlockId b = 0; b < 10; ++b) {
    cache.Insert(std::vector<BlockId>{b}, 0, PlanWithCost(1.0));
  }
  EXPECT_EQ(cache.size(), 10u);
  cache.BumpEpoch();  // o_j changed materially.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(std::vector<BlockId>{3}, 0).has_value());
}

TEST(PlanCacheTest, LruEvictionKeepsHotEntries) {
  PlanCache cache(3);
  cache.Insert(std::vector<BlockId>{1}, 0, PlanWithCost(1.0));
  cache.Insert(std::vector<BlockId>{2}, 0, PlanWithCost(2.0));
  cache.Insert(std::vector<BlockId>{3}, 0, PlanWithCost(3.0));
  // Touch 1 so that 2 is the LRU victim.
  EXPECT_TRUE(cache.Lookup(std::vector<BlockId>{1}, 0).has_value());
  cache.Insert(std::vector<BlockId>{4}, 0, PlanWithCost(4.0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.Lookup(std::vector<BlockId>{1}, 0).has_value());
  EXPECT_FALSE(cache.Lookup(std::vector<BlockId>{2}, 0).has_value());
  EXPECT_TRUE(cache.Lookup(std::vector<BlockId>{3}, 0).has_value());
  EXPECT_TRUE(cache.Lookup(std::vector<BlockId>{4}, 0).has_value());
}

TEST(PlanCacheTest, HitRateTracksPaperMetric) {
  PlanCache cache;
  const std::vector<BlockId> q = {1};
  cache.Insert(q, 0, PlanWithCost(1.0));
  for (int i = 0; i < 9; ++i) (void)cache.Lookup(q, 0);
  (void)cache.Lookup(std::vector<BlockId>{2}, 0);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.9);  // Paper reports ~90%.
}

TEST(PlanCacheTest, MemoryEstimatePositive) {
  PlanCache cache;
  EXPECT_EQ(cache.ApproxMemoryBytes(), 0u);
  AccessPlan plan = PlanWithCost(1.0);
  plan.reads.push_back({1, 0, 0});
  cache.Insert(std::vector<BlockId>{1}, 0, plan);
  EXPECT_GT(cache.ApproxMemoryBytes(), 0u);
}

TEST(PlanCacheTest, StressManyEntriesWithInvalidation) {
  PlanCache cache(1000);
  for (BlockId b = 0; b < 2000; ++b) {
    cache.Insert(std::vector<BlockId>{b, b + 1}, 0, PlanWithCost(1.0));
  }
  EXPECT_EQ(cache.size(), 1000u);
  // Every remaining entry references blocks >= 1000.
  for (BlockId b = 1500; b < 1600; ++b) cache.InvalidateBlock(b);
  EXPECT_LT(cache.size(), 1000u);
  // The structure stays consistent: all lookups behave.
  for (BlockId b = 0; b < 2000; ++b) {
    (void)cache.Lookup(std::vector<BlockId>{b, b + 1}, 0);
  }
}

}  // namespace
}  // namespace ecstore
