// Tests for the subset-satisfying cache lookup (paper Section V-B1:
// "cache and reuse previous access plans that satisfy a new request").
#include <gtest/gtest.h>

#include "placement/plan_cache.h"

namespace ecstore {
namespace {

AccessPlan PlanForBlocks(const std::vector<BlockId>& blocks, SiteId base_site) {
  AccessPlan p;
  p.optimal = true;
  for (BlockId b : blocks) {
    p.reads.push_back({b, base_site, 0});
    p.reads.push_back({b, static_cast<SiteId>(base_site + 1), 1});
  }
  p.estimated_cost_ms = static_cast<double>(blocks.size());
  return p;
}

TEST(PlanCacheSubsetTest, ExactMatchStillWorks) {
  PlanCache cache;
  const std::vector<BlockId> q = {1, 2, 3};
  cache.Insert(q, 0, PlanForBlocks(q, 0));
  const auto hit = cache.LookupSatisfying(q, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reads.size(), 6u);
  EXPECT_TRUE(hit->optimal);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCacheSubsetTest, SupersetSatisfiesAndRestricts) {
  PlanCache cache;
  const std::vector<BlockId> super = {10, 11, 12, 13, 14};
  cache.Insert(super, 0, PlanForBlocks(super, 0));

  const std::vector<BlockId> sub = {11, 13};
  const auto hit = cache.LookupSatisfying(sub, 0);
  ASSERT_TRUE(hit.has_value());
  // Restricted to the two requested blocks, two reads each.
  ASSERT_EQ(hit->reads.size(), 4u);
  for (const ChunkRead& read : hit->reads) {
    EXPECT_TRUE(read.block == 11 || read.block == 13);
  }
  // A restriction of a superset optimum is not guaranteed optimal.
  EXPECT_FALSE(hit->optimal);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(PlanCacheSubsetTest, ScanPrefixAndSuffixSatisfied) {
  // The YCSB-E pattern: the cached full range covers shorter scans that
  // start anywhere within it.
  PlanCache cache;
  std::vector<BlockId> range;
  for (BlockId b = 100; b < 119; ++b) range.push_back(b);
  cache.Insert(range, 0, PlanForBlocks(range, 2));

  for (BlockId start = 100; start < 115; start += 5) {
    std::vector<BlockId> scan;
    for (BlockId b = start; b < start + 4; ++b) scan.push_back(b);
    const auto hit = cache.LookupSatisfying(scan, 0);
    ASSERT_TRUE(hit.has_value()) << "scan at " << start;
    EXPECT_EQ(hit->reads.size(), 8u);
  }
}

TEST(PlanCacheSubsetTest, PartialOverlapDoesNotSatisfy) {
  PlanCache cache;
  const std::vector<BlockId> cached = {1, 2, 3};
  cache.Insert(cached, 0, PlanForBlocks(cached, 0));
  const std::vector<BlockId> wanted = {3, 4};  // 4 not covered.
  EXPECT_FALSE(cache.LookupSatisfying(wanted, 0).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheSubsetTest, DeltaMustMatch) {
  PlanCache cache;
  const std::vector<BlockId> super = {1, 2, 3};
  cache.Insert(super, 1, PlanForBlocks(super, 0));  // Late-binding plan.
  const std::vector<BlockId> sub = {2};
  EXPECT_FALSE(cache.LookupSatisfying(sub, 0).has_value());
  EXPECT_TRUE(cache.LookupSatisfying(sub, 1).has_value());
}

TEST(PlanCacheSubsetTest, EmptyRequestNeverSatisfied) {
  PlanCache cache;
  const std::vector<BlockId> some = {1};
  cache.Insert(some, 0, PlanForBlocks(some, 0));
  const std::vector<BlockId> empty;
  EXPECT_FALSE(cache.LookupSatisfying(empty, 0).has_value());
}

TEST(PlanCacheSubsetTest, InvalidationRemovesSupersetHits) {
  PlanCache cache;
  const std::vector<BlockId> super = {1, 2, 3};
  cache.Insert(super, 0, PlanForBlocks(super, 0));
  cache.InvalidateBlock(2);  // A chunk of block 2 moved.
  const std::vector<BlockId> sub = {1, 3};
  EXPECT_FALSE(cache.LookupSatisfying(sub, 0).has_value());
}

TEST(PlanCacheSubsetTest, ManyCachedSetsStillFindCover) {
  PlanCache cache;
  // Dozens of sets sharing block 5; only one covers {5, 6, 7}.
  for (BlockId other = 100; other < 120; ++other) {
    const std::vector<BlockId> pair = {5, other};
    cache.Insert(pair, 0, PlanForBlocks(pair, 0));
  }
  const std::vector<BlockId> covering = {5, 6, 7, 8};
  cache.Insert(covering, 0, PlanForBlocks(covering, 4));
  const std::vector<BlockId> wanted = {5, 6, 7};
  const auto hit = cache.LookupSatisfying(wanted, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->reads.size(), 6u);
  EXPECT_EQ(hit->reads[0].site, 4u);  // Came from the covering entry.
}

}  // namespace
}  // namespace ecstore
