#include "lp/ilp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ecstore::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(IlpTest, AddBinaryVariableInstallsBound) {
  IlpProblem p;
  const auto x = p.AddBinaryVariable(1.0);
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(p.lp.num_vars, 1u);
  ASSERT_EQ(p.lp.constraints.size(), 1u);  // x <= 1.
  EXPECT_EQ(p.lp.constraints[0].relation, Relation::kLessEq);
  EXPECT_DOUBLE_EQ(p.lp.constraints[0].rhs, 1.0);
}

TEST(IlpTest, SingleBinaryMinimization) {
  // min -x, x binary => x = 1.
  IlpProblem p;
  const auto x = p.AddBinaryVariable(-1.0);
  const auto sol = SolveIlp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.0, kTol);
  EXPECT_DOUBLE_EQ(sol.values[x], 1.0);
}

TEST(IlpTest, CoverConstraintForcesSelection) {
  // min 5a + 3b s.t. a + b >= 1 => pick b.
  IlpProblem p;
  const auto a = p.AddBinaryVariable(5.0);
  const auto b = p.AddBinaryVariable(3.0);
  p.lp.AddConstraint({{{a, 1.0}, {b, 1.0}}, Relation::kGreaterEq, 1.0});
  const auto sol = SolveIlp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, kTol);
  EXPECT_DOUBLE_EQ(sol.values[a], 0.0);
  EXPECT_DOUBLE_EQ(sol.values[b], 1.0);
}

TEST(IlpTest, InfeasibleBinaryProblem) {
  // a + b >= 3 with two binaries is impossible.
  IlpProblem p;
  const auto a = p.AddBinaryVariable(1.0);
  const auto b = p.AddBinaryVariable(1.0);
  p.lp.AddConstraint({{{a, 1.0}, {b, 1.0}}, Relation::kGreaterEq, 3.0});
  EXPECT_EQ(SolveIlp(p).status, SolveStatus::kInfeasible);
}

TEST(IlpTest, FractionalLpNeedsBranching) {
  // Knapsack-style: min -(2x + 3y) s.t. 4x + 5y <= 6. LP relax is
  // fractional; integer optimum picks y only => obj -3.
  IlpProblem p;
  const auto x = p.AddBinaryVariable(-2.0);
  const auto y = p.AddBinaryVariable(-3.0);
  p.lp.AddConstraint({{{x, 4.0}, {y, 5.0}}, Relation::kLessEq, 6.0});
  const auto sol = SolveIlp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -3.0, kTol);
  EXPECT_DOUBLE_EQ(sol.values[x], 0.0);
  EXPECT_DOUBLE_EQ(sol.values[y], 1.0);
  EXPECT_GT(sol.nodes_explored, 1u);  // Branching actually happened.
}

TEST(IlpTest, ValuesAreIntegral) {
  IlpProblem p;
  for (int i = 0; i < 6; ++i) p.AddBinaryVariable(-(1.0 + i * 0.1));
  Constraint c;
  for (std::size_t i = 0; i < 6; ++i) c.terms.push_back({i, 1.0});
  c.relation = Relation::kLessEq;
  c.rhs = 3.0;
  p.lp.AddConstraint(std::move(c));
  const auto sol = SolveIlp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  for (std::size_t v : p.binary_vars) {
    EXPECT_TRUE(sol.values[v] == 0.0 || sol.values[v] == 1.0);
  }
  // Picks the three most negative costs: indices 5, 4, 3.
  EXPECT_NEAR(sol.objective, -(1.5 + 1.4 + 1.3), kTol);
}

// Exhaustive cross-check on random small set-cover ILPs: branch & bound
// must match brute force over all 2^n assignments.
TEST(IlpTest, MatchesBruteForceOnRandomProblems) {
  ecstore::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    constexpr int kVars = 8;
    IlpProblem p;
    std::vector<double> costs(kVars);
    for (int i = 0; i < kVars; ++i) {
      costs[i] = 1.0 + static_cast<double>(rng.NextBounded(100)) / 10.0;
      p.AddBinaryVariable(costs[i]);
    }
    // 4 random cover constraints over 3 vars each.
    std::vector<std::vector<int>> covers;
    for (int k = 0; k < 4; ++k) {
      std::vector<int> members;
      while (members.size() < 3) {
        const int m = static_cast<int>(rng.NextBounded(kVars));
        if (std::find(members.begin(), members.end(), m) == members.end()) {
          members.push_back(m);
        }
      }
      covers.push_back(members);
      Constraint c;
      for (int m : members) c.terms.push_back({static_cast<std::size_t>(m), 1.0});
      c.relation = Relation::kGreaterEq;
      c.rhs = 1.0;
      p.lp.AddConstraint(std::move(c));
    }

    // Brute force.
    double best = 1e18;
    for (int mask = 0; mask < (1 << kVars); ++mask) {
      bool ok = true;
      for (const auto& cover : covers) {
        int hit = 0;
        for (int m : cover) hit += (mask >> m) & 1;
        if (hit < 1) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      double obj = 0;
      for (int i = 0; i < kVars; ++i) {
        if ((mask >> i) & 1) obj += costs[i];
      }
      best = std::min(best, obj);
    }

    const auto sol = SolveIlp(p);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(sol.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(IlpTest, NodeLimitReturnsIncumbentOrNothing) {
  IlpProblem p;
  for (int i = 0; i < 10; ++i) p.AddBinaryVariable(-1.0);
  Constraint c;
  for (std::size_t i = 0; i < 10; ++i) c.terms.push_back({i, 3.0});
  c.relation = Relation::kLessEq;
  c.rhs = 14.0;  // At most 4 can be chosen: fractional relaxation.
  p.lp.AddConstraint(std::move(c));
  IlpOptions opts;
  opts.max_nodes = 2;
  const auto sol = SolveIlp(p, opts);
  // With a tiny node budget we may or may not find the optimum, but the
  // call must return cleanly and report its node count.
  EXPECT_LE(sol.nodes_explored, 3u);
}

// Structure mirroring the paper's Eq. 2/3 access-plan ILP: select k=2
// chunks per block from sites, paying o_j once per site and m_j*z per
// chunk. Validates that our ILP picks co-located chunks when beneficial.
TEST(IlpTest, AccessPlanShapedProblemPrefersCoLocation) {
  // Two blocks (A, B), three sites. Site 0 has chunks of both A and B;
  // sites 1 and 2 have one chunk each of A and B respectively; site
  // overhead dominates, so the optimum uses sites {0,1,2} minimally.
  // Layout of binaries: s[block][site] only where a chunk exists.
  // A: sites 0,1,2 ; B: sites 0,1,2 (full availability, k=2).
  IlpProblem p;
  const double o = 5.0, mz = 1.0;
  // s variables: 6 of them (block-major).
  std::vector<std::array<std::size_t, 3>> s(2);
  for (int b = 0; b < 2; ++b) {
    for (int j = 0; j < 3; ++j) s[b][j] = p.AddBinaryVariable(mz);
  }
  // a_j variables.
  std::array<std::size_t, 3> a{};
  for (int j = 0; j < 3; ++j) a[j] = p.AddBinaryVariable(o);
  // Eq. 2: each block selects >= 2 chunks.
  for (int b = 0; b < 2; ++b) {
    Constraint c;
    for (int j = 0; j < 3; ++j) c.terms.push_back({s[b][j], 1.0});
    c.relation = Relation::kGreaterEq;
    c.rhs = 2.0;
    p.lp.AddConstraint(std::move(c));
  }
  // Eq. 3: |Q| * a_j - sum_b s_bj >= 0.
  for (int j = 0; j < 3; ++j) {
    Constraint c;
    c.terms.push_back({a[j], 2.0});
    for (int b = 0; b < 2; ++b) c.terms.push_back({s[b][j], -1.0});
    c.relation = Relation::kGreaterEq;
    c.rhs = 0.0;
    p.lp.AddConstraint(std::move(c));
  }
  const auto sol = SolveIlp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Optimum: 4 chunk reads (4*1) + 2 sites (2*5) = 14 via co-location.
  EXPECT_NEAR(sol.objective, 14.0, kTol);
  int sites_used = 0;
  for (int j = 0; j < 3; ++j) sites_used += static_cast<int>(std::lround(sol.values[a[j]]));
  EXPECT_EQ(sites_used, 2);
}

}  // namespace
}  // namespace ecstore::lp
