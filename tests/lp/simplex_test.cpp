#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace ecstore::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, TrivialEmptyProblem) {
  LpProblem p;
  p.AddVariable(1.0);
  const auto sol = SolveLp(p);
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, kTol);
}

TEST(SimplexTest, UnboundedWithoutConstraints) {
  LpProblem p;
  p.AddVariable(-1.0);  // min -x, x >= 0 unbounded.
  EXPECT_EQ(SolveLp(p).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, SimpleMinimization) {
  // min x + y  s.t. x + y >= 2, x >= 0, y >= 0 => objective 2.
  LpProblem p;
  const auto x = p.AddVariable(1.0);
  const auto y = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 2.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, kTol);
  EXPECT_NEAR(sol.values[x] + sol.values[y], 2.0, kTol);
}

TEST(SimplexTest, PrefersCheaperVariable) {
  // min 3x + y  s.t. x + y >= 5 => y = 5.
  LpProblem p;
  const auto x = p.AddVariable(3.0);
  const auto y = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, Relation::kGreaterEq, 5.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
  EXPECT_NEAR(sol.values[x], 0.0, kTol);
  EXPECT_NEAR(sol.values[y], 5.0, kTol);
}

TEST(SimplexTest, EqualityConstraint) {
  // min 2x + 3y  s.t. x + y == 4, x <= 1 => x = 1, y = 3, obj 11.
  LpProblem p;
  const auto x = p.AddVariable(2.0);
  const auto y = p.AddVariable(3.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0});
  p.AddConstraint({{{x, 1.0}}, Relation::kLessEq, 1.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 11.0, kTol);
  EXPECT_NEAR(sol.values[x], 1.0, kTol);
  EXPECT_NEAR(sol.values[y], 3.0, kTol);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  LpProblem p;
  const auto x = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}}, Relation::kLessEq, 1.0});
  p.AddConstraint({{{x, 1.0}}, Relation::kGreaterEq, 2.0});
  EXPECT_EQ(SolveLp(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, InfeasibleEquality) {
  // x + y == -1 with x, y >= 0.
  LpProblem p;
  const auto x = p.AddVariable(1.0);
  const auto y = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, -1.0});
  EXPECT_EQ(SolveLp(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpProblem p;
  const auto x = p.AddVariable(1.0);
  p.AddConstraint({{{x, -1.0}}, Relation::kLessEq, -3.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, kTol);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // min -(3x + 5y) s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => x=2, y=6, obj -36.
  LpProblem p;
  const auto x = p.AddVariable(-3.0);
  const auto y = p.AddVariable(-5.0);
  p.AddConstraint({{{x, 1.0}}, Relation::kLessEq, 4.0});
  p.AddConstraint({{{y, 2.0}}, Relation::kLessEq, 12.0});
  p.AddConstraint({{{x, 3.0}, {y, 2.0}}, Relation::kLessEq, 18.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, kTol);
  EXPECT_NEAR(sol.values[x], 2.0, kTol);
  EXPECT_NEAR(sol.values[y], 6.0, kTol);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // A degenerate LP known to cycle without anti-cycling (Beale-like).
  LpProblem p;
  const auto x1 = p.AddVariable(-0.75);
  const auto x2 = p.AddVariable(150.0);
  const auto x3 = p.AddVariable(-0.02);
  const auto x4 = p.AddVariable(6.0);
  p.AddConstraint({{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Relation::kLessEq, 0.0});
  p.AddConstraint({{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Relation::kLessEq, 0.0});
  p.AddConstraint({{{x3, 1.0}}, Relation::kLessEq, 1.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, kTol);
}

TEST(SimplexTest, RedundantConstraintsHandled) {
  LpProblem p;
  const auto x = p.AddVariable(1.0);
  p.AddConstraint({{{x, 1.0}}, Relation::kGreaterEq, 1.0});
  p.AddConstraint({{{x, 1.0}}, Relation::kGreaterEq, 1.0});  // Duplicate.
  p.AddConstraint({{{x, 2.0}}, Relation::kGreaterEq, 2.0});  // Scaled dup.
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, kTol);
}

TEST(SimplexTest, EqualityOnlySystem) {
  // x + y == 3, x - y == 1 => x=2, y=1 (a pure linear solve).
  LpProblem p;
  const auto x = p.AddVariable(0.0);
  const auto y = p.AddVariable(0.0);
  p.AddConstraint({{{x, 1.0}, {y, 1.0}}, Relation::kEqual, 3.0});
  p.AddConstraint({{{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0});
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 2.0, kTol);
  EXPECT_NEAR(sol.values[y], 1.0, kTol);
}

TEST(SimplexTest, MediumRandomProblemSolves) {
  // A structured 30-var covering LP: min sum c_i x_i, groups must sum >= 1.
  LpProblem p;
  for (int i = 0; i < 30; ++i) p.AddVariable(1.0 + (i % 7));
  for (int g = 0; g < 10; ++g) {
    Constraint c;
    for (int j = 0; j < 3; ++j) c.terms.push_back({static_cast<std::size_t>(g * 3 + j), 1.0});
    c.relation = Relation::kGreaterEq;
    c.rhs = 1.0;
    p.AddConstraint(std::move(c));
  }
  const auto sol = SolveLp(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Each group picks its cheapest member: groups of costs {1+0,1+1,1+2} etc.
  double expected = 0;
  for (int g = 0; g < 10; ++g) {
    double best = 1e9;
    for (int j = 0; j < 3; ++j) best = std::min(best, 1.0 + ((g * 3 + j) % 7));
    expected += best;
  }
  EXPECT_NEAR(sol.objective, expected, kTol);
}

}  // namespace
}  // namespace ecstore::lp
