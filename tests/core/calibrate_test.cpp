#include "core/calibrate.h"

#include <gtest/gtest.h>

#include "gf/gf256_kernels.h"

namespace ecstore {
namespace {

TEST(CalibrateTest, MeasuresPositiveThroughput) {
  // Small block + short window keeps this a smoke test, not a benchmark.
  const CodingCalibration cal =
      MeasureCodingThroughput(2, 2, 64 * 1024, /*min_measure_ms=*/2.0);
  EXPECT_GT(cal.encode_bytes_per_ms, 0);
  EXPECT_GT(cal.decode_bytes_per_ms, 0);
  EXPECT_GT(cal.reassemble_bytes_per_ms, 0);
  EXPECT_EQ(cal.kernel, gf::ActiveKernels().name);
}

TEST(CalibrateTest, OverwritesConfigConstants) {
  ECStoreConfig config;
  config.encode_bytes_per_ms = -1;
  config.decode_bytes_per_ms = -1;
  config.reassemble_bytes_per_ms = -1;
  const CodingCalibration cal = CalibrateCodingCosts(config, 64 * 1024);
  EXPECT_EQ(config.encode_bytes_per_ms, cal.encode_bytes_per_ms);
  EXPECT_EQ(config.decode_bytes_per_ms, cal.decode_bytes_per_ms);
  EXPECT_EQ(config.reassemble_bytes_per_ms, cal.reassemble_bytes_per_ms);
  EXPECT_GT(config.decode_bytes_per_ms, 0);
}

TEST(CalibrateTest, RejectsZeroBlock) {
  EXPECT_THROW(MeasureCodingThroughput(2, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ecstore
