#include "core/config.h"

#include <gtest/gtest.h>

namespace ecstore {
namespace {

TEST(TechniqueTest, NamesRoundTrip) {
  for (Technique t :
       {Technique::kReplication, Technique::kEc, Technique::kEcLb,
        Technique::kEcC, Technique::kEcCM, Technique::kEcCMLb}) {
    EXPECT_EQ(ParseTechnique(TechniqueName(t)), t);
  }
  EXPECT_THROW(ParseTechnique("bogus"), std::invalid_argument);
}

TEST(TechniqueTest, FeatureFlags) {
  EXPECT_FALSE(UsesCostModel(Technique::kReplication));
  EXPECT_FALSE(UsesCostModel(Technique::kEc));
  EXPECT_FALSE(UsesCostModel(Technique::kEcLb));
  EXPECT_TRUE(UsesCostModel(Technique::kEcC));
  EXPECT_TRUE(UsesCostModel(Technique::kEcCM));
  EXPECT_TRUE(UsesCostModel(Technique::kEcCMLb));

  EXPECT_FALSE(UsesMover(Technique::kEcC));
  EXPECT_TRUE(UsesMover(Technique::kEcCM));
  EXPECT_TRUE(UsesMover(Technique::kEcCMLb));

  EXPECT_EQ(LateBindingDelta(Technique::kEc, 1), 0u);
  EXPECT_EQ(LateBindingDelta(Technique::kEcLb, 1), 1u);
  EXPECT_EQ(LateBindingDelta(Technique::kEcCM, 1), 0u);
  EXPECT_EQ(LateBindingDelta(Technique::kEcCMLb, 2), 2u);
}

TEST(ConfigTest, CodingShape) {
  ECStoreConfig ec = ECStoreConfig::ForTechnique(Technique::kEc);
  EXPECT_EQ(ec.ChunksPerBlock(), 4u);   // RS(2,2).
  EXPECT_EQ(ec.RequiredChunks(), 2u);
  EXPECT_EQ(ec.ChunkBytes(100), 50u);
  EXPECT_EQ(ec.ChunkBytes(101), 51u);

  ECStoreConfig rep = ECStoreConfig::ForTechnique(Technique::kReplication);
  EXPECT_EQ(rep.ChunksPerBlock(), 3u);  // Three copies.
  EXPECT_EQ(rep.RequiredChunks(), 1u);
  EXPECT_EQ(rep.ChunkBytes(100), 100u);
}

TEST(ConfigTest, PaperDefaults) {
  const ECStoreConfig c;
  EXPECT_EQ(c.k, 2u);
  EXPECT_EQ(c.r, 2u);
  EXPECT_EQ(c.num_sites, 32u);
  EXPECT_EQ(c.co_access_window, 5000u);
  EXPECT_DOUBLE_EQ(c.mover_chunks_per_sec, 1.0);
  EXPECT_DOUBLE_EQ(c.mover.w1, 1.0);
  EXPECT_DOUBLE_EQ(c.mover.w2, 3.0);
  EXPECT_EQ(c.repair_wait, 15 * kMinute);
  EXPECT_EQ(c.stats_report_interval, 5 * kSecond);
}

TEST(ConfigTest, EffectiveDeltaFollowsTechnique) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(Technique::kEcLb);
  c.late_binding_delta = 1;
  EXPECT_EQ(c.EffectiveDelta(), 1u);
  c = ECStoreConfig::ForTechnique(Technique::kEcC, c);
  EXPECT_EQ(c.EffectiveDelta(), 0u);
}

}  // namespace
}  // namespace ecstore
