// Sweeps the coding parameters (k, r) through both embodiments — the
// paper's Section V-B3 claim is that EC-Store's strategies work
// "regardless of choices for k and r".
#include <gtest/gtest.h>

#include "core/local_store.h"
#include "core/sim_store.h"

namespace ecstore {
namespace {

class CodingParamsTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(CodingParamsTest, LocalStoreRoundTripsAndSurvivesRFailures) {
  const auto [k, r] = GetParam();
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.k = k;
  config.r = r;
  config.num_sites = k + r + 4;
  config.seed = 100 + k * 10 + r;
  LocalECStore store(config);

  Rng rng(1);
  std::vector<std::uint8_t> block(10000 + k * 13);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  store.Put(1, block);
  EXPECT_EQ(store.Get(1), block);

  // Fail exactly r of the block's sites: still readable.
  const BlockInfo info = store.state().GetBlock(1);
  for (std::uint32_t i = 0; i < r; ++i) store.FailSite(info.locations[i].site);
  EXPECT_EQ(store.Get(1), block);

  // One more failure of a chunk site exceeds the tolerance.
  store.FailSite(info.locations[r].site);
  EXPECT_THROW(store.Get(1), std::runtime_error);
}

TEST_P(CodingParamsTest, SimStoreServesRequests) {
  const auto [k, r] = GetParam();
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCM);
  config.k = k;
  config.r = r;
  config.num_sites = std::max<std::size_t>(12, k + r + 2);
  config.seed = 7;
  SimECStore store(config);
  store.LoadBlocks(0, 50, 120 * 1024);

  int completed = 0;
  for (BlockId id = 0; id < 20; ++id) {
    store.Get({id, id + 1}, [&](const RequestBreakdown& b) {
      EXPECT_TRUE(b.ok);
      ++completed;
    });
  }
  store.queue().RunUntil(30 * kSecond);
  EXPECT_EQ(completed, 20);

  // Volume check: each block read fetches k chunks of ceil(size/k).
  std::uint64_t total = 0;
  for (auto b : store.SiteBytesRead()) total += b;
  const std::uint64_t per_block = k * ((120 * 1024 + k - 1) / k);
  EXPECT_EQ(total, 40u * per_block);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CodingParamsTest,
    ::testing::Values(std::make_pair(2u, 1u), std::make_pair(2u, 2u),
                      std::make_pair(3u, 2u), std::make_pair(4u, 2u),
                      std::make_pair(6u, 3u)));

}  // namespace
}  // namespace ecstore
