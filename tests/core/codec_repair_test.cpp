// Store-level codec-family tests (DESIGN.md §11): RepairPlans drive the
// scrubber and the repair service through LocalECStore — an LRC scrub
// after corruption reads ONLY the local group's chunks (verified from
// per-node read counters), repair traffic is charged per plan (LRC's
// single-chunk rebuild is <= 0.55x the RS(6,3) wire bytes, the ISSUE
// acceptance bound), mixed codec families coexist per block in one
// cluster, and group-aware placement/repair keeps a placement group's
// chunks on distinct failure domains. Deterministic: fixed seeds, no
// wall-clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/codec_spec.h"
#include "core/local_store.h"
#include "erasure/codec_family.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> MakeBlock(std::size_t n, std::uint64_t tag) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>((tag * 131) ^ (i * 31) ^ (i >> 8));
  }
  return data;
}

ECStoreConfig LrcConfig(std::size_t num_sites = 12) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  c.num_sites = num_sites;
  c.codec_family = CodecFamilyId::kAzureLrc;
  c.k = 6;
  c.r = 2;  // globals
  c.codec_locals = 2;
  c.seed = 21;
  return c;
}

/// The site currently holding `chunk` of `block`, or kInvalidSite.
SiteId SiteOf(const LocalECStore& store, BlockId block, ChunkIndex chunk) {
  for (const ChunkLocation& loc : store.state().GetBlock(block).locations) {
    if (loc.chunk == chunk) return loc.site;
  }
  return kInvalidSite;
}

std::vector<std::uint64_t> ReadsServedSnapshot(LocalECStore& store) {
  std::vector<std::uint64_t> snap(store.config().num_sites);
  for (SiteId j = 0; j < store.config().num_sites; ++j) {
    snap[j] = store.node(j).reads_served();
  }
  return snap;
}

// ---------------------------------------------------------------------------
// The satellite regression test: scrub-after-corruption reads only the
// RepairPlan's chunks. For LRC(6,2,2) a corrupt data chunk is rebuilt
// from its local group — 3 chunk reads, not k = 6 — and the per-node
// read counters prove no other site was touched.

TEST(CodecRepairTest, LrcScrubReadsOnlyTheLocalGroupsChunks) {
  LocalECStore store(LrcConfig());
  const auto data = MakeBlock(6 * 1024, 7);
  store.Put(1, data);

  const BlockInfo info = store.state().GetBlock(1);
  ASSERT_EQ(info.locations.size(), 10u);  // 6 data + 2 locals + 2 globals

  // Corrupt data chunk 0. Its local-group repair set is {1, 2, 6}: the
  // two group-mates plus the group's local parity.
  const SiteId bad_site = SiteOf(store, 1, 0);
  ASSERT_NE(bad_site, kInvalidSite);
  ASSERT_TRUE(store.node(bad_site).CorruptChunk(1, 0));

  const auto before = ReadsServedSnapshot(store);
  const ControlPlaneUsage usage_before = store.Usage();
  EXPECT_EQ(store.ScrubOnce(), 1u);
  EXPECT_TRUE(store.node(bad_site).HasValidChunk(1, 0));

  // Exactly the three local-group sites served one verified read each;
  // every other node (including the 2 globals) was left alone.
  const std::set<ChunkIndex> plan_chunks = {1, 2, 6};
  std::uint64_t total_delta = 0;
  for (SiteId j = 0; j < store.config().num_sites; ++j) {
    const std::uint64_t delta = store.node(j).reads_served() - before[j];
    total_delta += delta;
    std::optional<ChunkIndex> held;
    for (const ChunkLocation& loc : info.locations) {
      if (loc.site == j) held = loc.chunk;
    }
    if (held && plan_chunks.count(*held)) {
      EXPECT_EQ(delta, 1u) << "plan chunk " << *held << " not read at site "
                           << j;
    } else {
      EXPECT_EQ(delta, 0u) << "off-plan read at site " << j;
    }
  }
  EXPECT_EQ(total_delta, 3u);

  // The wire accounting matches: 3 chunks, 3 * chunk_bytes.
  const ControlPlaneUsage usage = store.Usage();
  EXPECT_EQ(usage.repair_chunks_read - usage_before.repair_chunks_read, 3u);
  EXPECT_EQ(usage.repair_bytes_read - usage_before.repair_bytes_read,
            3u * info.chunk_bytes);
  EXPECT_EQ(store.Get(1), data);
}

// ---------------------------------------------------------------------------
// The ISSUE acceptance bound on real store traffic: repairing a failed
// site's data chunk under LRC(6,2,2) charges <= 0.55x the bytes-on-wire
// RS(6,3) charges for the same loss (measured 0.5x: 3 chunks vs 6).

TEST(CodecRepairTest, LrcSiteRepairChargesUnderHalfTheRsWireBytes) {
  auto repair_bytes_for = [](ECStoreConfig config) {
    LocalECStore store(std::move(config));
    store.Put(1, MakeBlock(6 * 1024, 3));
    const SiteId victim = SiteOf(store, 1, 0);  // Loses data chunk 0.
    store.FailSite(victim);
    EXPECT_EQ(store.RepairSite(victim), 1u);
    EXPECT_EQ(store.Get(1), MakeBlock(6 * 1024, 3));
    return store.Usage().repair_bytes_read;
  };

  ECStoreConfig rs = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  rs.num_sites = 12;
  rs.k = 6;
  rs.r = 3;
  rs.seed = 21;

  const std::uint64_t lrc_bytes = repair_bytes_for(LrcConfig());
  const std::uint64_t rs_bytes = repair_bytes_for(rs);
  ASSERT_GT(rs_bytes, 0u);
  EXPECT_LE(lrc_bytes * 100, rs_bytes * 55)
      << "LRC repair read " << lrc_bytes << "B vs RS " << rs_bytes << "B";
}

// ---------------------------------------------------------------------------
// Families coexist per block in one cluster: a default-RS store carrying
// LRC, piggyback-RS, and replicated blocks side by side, each readable
// bit-exact, each scrubbed through its own family's RepairPlan.

TEST(CodecRepairTest, MixedFamiliesCoexistAndScrubPerBlock) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 12;
  config.k = 2;
  config.r = 2;
  config.seed = 5;
  LocalECStore store(config);

  const auto d1 = MakeBlock(8 * 1024, 1);
  const auto d2 = MakeBlock(6 * 1024 + 11, 2);
  const auto d3 = MakeBlock(6 * 1024 + 5, 3);
  const auto d4 = MakeBlock(3 * 1024, 4);
  store.Put(1, d1);  // Config default: rs(2,2).
  store.Put(2, d2, ParseCodecSpec("lrc(6,2,2)"));
  store.Put(3, d3, ParseCodecSpec("pb(6,3)"));
  store.Put(4, d4, ParseCodecSpec("rep(2)"));

  EXPECT_EQ(store.state().GetBlock(2).codec.family, CodecFamilyId::kAzureLrc);
  EXPECT_EQ(store.state().GetBlock(2).locations.size(), 10u);
  EXPECT_EQ(store.state().GetBlock(3).codec.family,
            CodecFamilyId::kPiggybackRs);
  EXPECT_EQ(store.state().GetBlock(3).locations.size(), 9u);
  EXPECT_EQ(store.state().GetBlock(4).locations.size(), 3u);

  EXPECT_EQ(store.Get(1), d1);
  EXPECT_EQ(store.Get(2), d2);
  EXPECT_EQ(store.Get(3), d3);
  EXPECT_EQ(store.Get(4), d4);

  // One corrupt chunk per exotic block: reads stay bit-exact (decoded
  // around by the block's own family) and one scrub pass heals both.
  for (BlockId id : {BlockId{2}, BlockId{3}}) {
    const ChunkLocation loc = store.state().GetBlock(id).locations.front();
    ASSERT_TRUE(store.node(loc.site).CorruptChunk(id, loc.chunk));
  }
  EXPECT_EQ(store.Get(2), d2);
  EXPECT_EQ(store.Get(3), d3);
  EXPECT_EQ(store.ScrubOnce(), 2u);
  for (BlockId id : {BlockId{2}, BlockId{3}}) {
    for (const ChunkLocation& loc : store.state().GetBlock(id).locations) {
      EXPECT_TRUE(store.node(loc.site).HasValidChunk(id, loc.chunk));
    }
  }
  EXPECT_EQ(store.Get(2), d2);
  EXPECT_EQ(store.Get(3), d3);
}

// Degraded reads route through the family's CanDecode, not the MDS
// k-count: with two LRC data chunks on failed sites, planning restricts
// itself to the punctured-MDS candidates (data + globals) and the read
// still completes bit-exact.

TEST(CodecRepairTest, LrcDegradedReadDecodesAroundTwoFailedSites) {
  LocalECStore store(LrcConfig());
  const auto data = MakeBlock(6 * 1024 + 3, 9);
  store.Put(1, data);
  store.FailSite(SiteOf(store, 1, 0));
  store.FailSite(SiteOf(store, 1, 1));
  EXPECT_EQ(store.Get(1), data);
}

// ---------------------------------------------------------------------------
// Group-aware placement: with failure_domains configured, every LRC
// placement group (local group data + its parity) lands on distinct
// domains, so one domain outage costs each group at most one chunk —
// exactly what keeps its repairs local. The repair destination honors
// the same constraint.

TEST(CodecRepairTest, GroupAwarePlacementSpreadsLocalGroupsAcrossDomains) {
  ECStoreConfig config = LrcConfig(/*num_sites=*/15);
  config.failure_domains = 5;  // Sites j, domain j % 5: three sites each.
  LocalECStore store(config);

  for (BlockId id = 0; id < 8; ++id) {
    store.Put(id, MakeBlock(6 * 1024, id));
    const BlockInfo info = store.state().GetBlock(id);
    std::set<std::size_t> group0, group1;
    for (const ChunkLocation& loc : info.locations) {
      const auto group = PlacementGroupOf(info.codec, loc.chunk);
      if (!group) continue;  // Globals are unconstrained.
      (*group == 0 ? group0 : group1).insert(loc.site % 5);
    }
    EXPECT_EQ(group0.size(), 4u) << "block " << id;  // 3 data + 1 parity
    EXPECT_EQ(group1.size(), 4u) << "block " << id;
  }

  // Repairing a lost group chunk re-lands it off its group-mates'
  // domains, preserving the invariant.
  const SiteId victim = SiteOf(store, 0, 0);
  store.FailSite(victim);
  ASSERT_GE(store.RepairSite(victim), 1u);
  const BlockInfo info = store.state().GetBlock(0);
  std::set<std::size_t> group0;
  for (const ChunkLocation& loc : info.locations) {
    if (PlacementGroupOf(info.codec, loc.chunk) == std::optional<uint32_t>(0)) {
      group0.insert(loc.site % 5);
    }
  }
  EXPECT_EQ(group0.size(), 4u);
  EXPECT_EQ(store.Get(0), MakeBlock(6 * 1024, 0));
}

}  // namespace
}  // namespace ecstore
