// Tests for the simulated write path (Fig. 3's W1-W3) and delete.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "core/sim_store.h"

namespace ecstore {
namespace {

ECStoreConfig TinyConfig(Technique t) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(t);
  c.num_sites = 8;
  c.seed = 77;
  return c;
}

SimECStore::PutResult RunPut(SimECStore& store, BlockId id, std::uint64_t bytes) {
  SimECStore::PutResult result;
  bool done = false;
  store.Put(id, bytes, [&](const SimECStore::PutResult& r) {
    result = r;
    done = true;
  });
  store.queue().RunUntil(store.queue().Now() + 30 * kSecond);
  EXPECT_TRUE(done);
  return result;
}

SimECStore::PutResult RunDelete(SimECStore& store, BlockId id) {
  SimECStore::PutResult result;
  bool done = false;
  store.Delete(id, [&](const SimECStore::PutResult& r) {
    result = r;
    done = true;
  });
  store.queue().RunUntil(store.queue().Now() + 10 * kSecond);
  EXPECT_TRUE(done);
  return result;
}

TEST(SimPutTest, PutCreatesKPlusRChunks) {
  SimECStore store(TinyConfig(Technique::kEc));
  const auto r = RunPut(store, 1, 100 * 1024);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.total, 0);
  ASSERT_TRUE(store.state().Contains(1));
  const BlockInfo& info = store.state().GetBlock(1);
  EXPECT_EQ(info.locations.size(), 4u);  // RS(2,2).
  EXPECT_EQ(info.chunk_bytes, 50u * 1024);
}

TEST(SimPutTest, ReplicationPutStoresThreeCopies) {
  SimECStore store(TinyConfig(Technique::kReplication));
  ASSERT_TRUE(RunPut(store, 1, 100 * 1024).ok);
  const BlockInfo& info = store.state().GetBlock(1);
  EXPECT_EQ(info.locations.size(), 3u);
  EXPECT_EQ(info.chunk_bytes, 100u * 1024);
}

TEST(SimPutTest, DuplicatePutFails) {
  SimECStore store(TinyConfig(Technique::kEc));
  ASSERT_TRUE(RunPut(store, 1, 1024).ok);
  EXPECT_FALSE(RunPut(store, 1, 1024).ok);
  EXPECT_EQ(store.state().num_blocks(), 1u);
}

TEST(SimPutTest, PutThenGetRoundTrips) {
  SimECStore store(TinyConfig(Technique::kEcC));
  ASSERT_TRUE(RunPut(store, 5, 100 * 1024).ok);
  bool got = false;
  store.Get({5}, [&](const RequestBreakdown& r) {
    EXPECT_TRUE(r.ok);
    got = true;
  });
  store.queue().RunUntil(store.queue().Now() + 10 * kSecond);
  EXPECT_TRUE(got);
}

TEST(SimPutTest, ChooseWriteSitesReturnsDistinctAvailableSites) {
  ECStoreConfig config = TinyConfig(Technique::kEcC);
  SimECStore store(config);
  store.LoadBlocks(1000, 8, 100 * 1024);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sites = store.ChooseWriteSites(4);
    ASSERT_EQ(sites.size(), 4u);
    const std::set<SiteId> distinct(sites.begin(), sites.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (SiteId s : sites) EXPECT_LT(s, 8u);
  }
}

TEST(SimPutTest, LoadAwarePlacementAvoidsSlowSites) {
  // A heterogeneous cluster: sites 0 and 1 run 5x slower. After probes
  // observe them, load-aware placement should prefer the fast sites.
  ECStoreConfig config = TinyConfig(Technique::kEcC);
  config.cost_tiebreak_noise = 0.0;
  config.slow_sites = {0, 1};
  config.slow_factor = 5.0;
  SimECStore store(config);
  store.LoadBlocks(0, 30, 100 * 1024);
  store.Start();
  // Traffic + several probe rounds let o_j converge.
  std::function<void()> issue = [&] {
    if (store.queue().Now() >= 10 * kSecond) return;
    store.Get({static_cast<BlockId>(store.requests_completed() % 30)},
              [&](const RequestBreakdown&) { issue(); });
  };
  for (int c = 0; c < 4; ++c) issue();
  store.queue().RunUntil(12 * kSecond);

  int slow_picks = 0;
  for (int trial = 0; trial < 20; ++trial) {
    for (SiteId s : store.ChooseWriteSites(4)) {
      slow_picks += (s == 0 || s == 1);
    }
  }
  // 20 trials x 4 picks from 8 sites: an oblivious chooser takes a slow
  // site half the time (20 of 80); load-aware placement should mostly
  // avoid them.
  EXPECT_LT(slow_picks, 10);
}

TEST(SimPutTest, WriteSitesExcludeFailed) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.FailSite(0);
  store.FailSite(1);
  for (int trial = 0; trial < 20; ++trial) {
    for (SiteId s : store.ChooseWriteSites(4)) {
      EXPECT_NE(s, 0u);
      EXPECT_NE(s, 1u);
    }
  }
}

TEST(SimPutTest, PutFailsWhenTooFewSites) {
  SimECStore store(TinyConfig(Technique::kEc));
  for (SiteId s = 0; s < 5; ++s) store.FailSite(s);  // 3 left < k+r = 4.
  EXPECT_FALSE(RunPut(store, 1, 1024).ok);
  EXPECT_FALSE(store.state().Contains(1));
}

TEST(SimPutTest, PutLandsOnSubstituteWhenSiteDiesMidWrite) {
  SimECStore store(TinyConfig(Technique::kEc));
  // Fail a site shortly after the put begins; the writer substitutes.
  store.Put(1, 1024 * 1024, [](const SimECStore::PutResult& r) {
    EXPECT_TRUE(r.ok);
  });
  store.queue().ScheduleAfter(1, [&] {
    // Fail half the cluster mid-flight; enough healthy sites remain.
    store.FailSite(0);
    store.FailSite(1);
    store.FailSite(2);
  });
  store.queue().RunUntil(30 * kSecond);
  if (store.state().Contains(1)) {
    for (const ChunkLocation& loc : store.state().GetBlock(1).locations) {
      // Every committed chunk claims a site; failed sites may legitimately
      // appear only if the write landed before the failure.
      EXPECT_LT(loc.site, 8u);
    }
  }
}

TEST(SimDeleteTest, DeleteRemovesBlock) {
  SimECStore store(TinyConfig(Technique::kEc));
  ASSERT_TRUE(RunPut(store, 1, 2048).ok);
  const auto r = RunDelete(store, 1);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(store.state().Contains(1));
  EXPECT_EQ(store.state().total_bytes(), 0u);
}

TEST(SimDeleteTest, DeleteUnknownFails) {
  SimECStore store(TinyConfig(Technique::kEc));
  EXPECT_FALSE(RunDelete(store, 42).ok);
}

TEST(SimDeleteTest, DeleteInvalidatesCachedPlans) {
  SimECStore store(TinyConfig(Technique::kEcC));
  store.LoadBlocks(0, 4, 100 * 1024);
  // Warm the cache for {0, 1} (second miss queues the ILP).
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    store.Get({0, 1}, [&](const RequestBreakdown&) { done = true; });
    store.queue().RunUntil(store.queue().Now() + 5 * kSecond);
    ASSERT_TRUE(done);
  }
  EXPECT_GT(store.plan_cache().size(), 0u);
  (void)RunDelete(store, 0);
  // The cached plan for {0,1} must be gone (block 0 no longer exists).
  // A fresh get for {1} must succeed without touching stale state.
  bool done = false;
  store.Get({1}, [&](const RequestBreakdown& r) {
    EXPECT_TRUE(r.ok);
    done = true;
  });
  store.queue().RunUntil(store.queue().Now() + 5 * kSecond);
  EXPECT_TRUE(done);
}

TEST(SimPutTest, PutDeleteChurnKeepsInventoryConsistent) {
  SimECStore store(TinyConfig(Technique::kEc));
  for (int round = 0; round < 10; ++round) {
    for (BlockId id = 0; id < 5; ++id) {
      ASSERT_TRUE(RunPut(store, round * 100 + id, 10 * 1024).ok);
    }
    for (BlockId id = 0; id < 5; ++id) {
      ASSERT_TRUE(RunDelete(store, round * 100 + id).ok);
    }
  }
  EXPECT_EQ(store.state().num_blocks(), 0u);
  EXPECT_EQ(store.state().total_bytes(), 0u);
  for (auto count : store.state().site_chunk_counts()) EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace ecstore
