#include "core/sim_store.h"

#include <gtest/gtest.h>

#include <functional>

#include "core/repair.h"

namespace ecstore {
namespace {

ECStoreConfig TinyConfig(Technique t) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(t);
  c.num_sites = 8;
  c.seed = 7;
  return c;
}

RequestBreakdown RunSingleGet(SimECStore& store, std::vector<BlockId> blocks) {
  RequestBreakdown result;
  bool done = false;
  store.Get(std::move(blocks), [&](const RequestBreakdown& r) {
    result = r;
    done = true;
  });
  store.queue().RunUntil(store.queue().Now() + 10 * kSecond);
  EXPECT_TRUE(done);
  return result;
}

TEST(SimStoreTest, SingleBlockGetCompletesWithBreakdown) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 10, 100 * 1024);
  const RequestBreakdown r = RunSingleGet(store, {3});
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.metadata, 0);
  EXPECT_GT(r.planning, 0);
  EXPECT_GT(r.retrieval, 0);
  EXPECT_GE(r.decode, 0);
  EXPECT_GE(r.total, r.metadata + r.planning + r.retrieval + r.decode);
  // Sanity: a single idle 100 KB get lands in the low-millisecond range.
  EXPECT_LT(r.total, 20 * kMillisecond);
}

TEST(SimStoreTest, MultiGetFetchesAllBlocks) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 10, 100 * 1024);
  const RequestBreakdown r = RunSingleGet(store, {0, 1, 2, 3, 4});
  EXPECT_TRUE(r.ok);
  // 5 blocks x k=2 chunks of 50 KB = 500 KB read across sites.
  std::uint64_t total_read = 0;
  for (auto b : store.SiteBytesRead()) total_read += b;
  EXPECT_EQ(total_read, 5u * 2 * 50 * 1024);
}

TEST(SimStoreTest, ReplicationReadsOneChunkPerBlock) {
  SimECStore store(TinyConfig(Technique::kReplication));
  store.LoadBlocks(0, 10, 100 * 1024);
  const RequestBreakdown r = RunSingleGet(store, {0, 1});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.decode, 0);  // No decode for replication.
  std::uint64_t total_read = 0;
  for (auto b : store.SiteBytesRead()) total_read += b;
  EXPECT_EQ(total_read, 2u * 100 * 1024);  // One full copy per block.
}

TEST(SimStoreTest, LateBindingReadsExtraChunks) {
  ECStoreConfig config = TinyConfig(Technique::kEcLb);
  config.late_binding_delta = 1;
  SimECStore store(config);
  store.LoadBlocks(0, 10, 100 * 1024);
  const RequestBreakdown r = RunSingleGet(store, {0});
  EXPECT_TRUE(r.ok);
  std::uint64_t total_read = 0;
  for (auto b : store.SiteBytesRead()) total_read += b;
  EXPECT_EQ(total_read, 3u * 50 * 1024);  // k + delta = 3 chunks read.
}

TEST(SimStoreTest, UnknownBlockThrowsAtMetadata) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 5, 1024);
  bool called = false;
  store.Get({99}, [&](const RequestBreakdown&) { called = true; });
  EXPECT_THROW(store.queue().RunUntil(10 * kSecond), std::out_of_range);
  EXPECT_FALSE(called);
}

TEST(SimStoreTest, CostModelPopulatesPlanCache) {
  SimECStore store(TinyConfig(Technique::kEcC));
  store.LoadBlocks(0, 10, 100 * 1024);
  // First miss registers the query set; the second miss (the set has
  // proven to recur) queues the background ILP; the third request hits.
  (void)RunSingleGet(store, {1, 2});
  EXPECT_EQ(store.plan_cache().hits(), 0u);
  EXPECT_EQ(store.Usage().ilp_solves, 0u);
  (void)RunSingleGet(store, {1, 2});
  EXPECT_EQ(store.Usage().ilp_solves, 1u);
  const RequestBreakdown r3 = RunSingleGet(store, {2, 1});  // Order-insensitive.
  EXPECT_TRUE(r3.plan_cache_hit);
  EXPECT_EQ(store.Usage().ilp_solves, 1u);  // One background solve total.
}

TEST(SimStoreTest, CachedPlanIsCheaperToGenerate) {
  ECStoreConfig config = TinyConfig(Technique::kEcC);
  SimECStore store(config);
  store.LoadBlocks(0, 10, 100 * 1024);
  const RequestBreakdown miss1 = RunSingleGet(store, {1, 2});
  const RequestBreakdown miss2 = RunSingleGet(store, {1, 2});  // Queues ILP.
  const RequestBreakdown hit = RunSingleGet(store, {1, 2});
  EXPECT_EQ(miss1.planning, config.greedy_plan_cost);
  EXPECT_EQ(miss2.planning, config.greedy_plan_cost);
  EXPECT_EQ(hit.planning, config.plan_lookup_cost);
  EXPECT_LT(hit.planning, miss1.planning);
}

TEST(SimStoreTest, RandomTechniquesSkipCache) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 10, 100 * 1024);
  (void)RunSingleGet(store, {1, 2});
  (void)RunSingleGet(store, {1, 2});
  EXPECT_EQ(store.plan_cache().hits() + store.plan_cache().misses(), 0u);
}

TEST(SimStoreTest, FailedSiteRoutedAround) {
  SimECStore store(TinyConfig(Technique::kEcC));
  store.LoadBlocks(0, 20, 100 * 1024);
  store.Start();
  // Fail two sites; r = 2 tolerance keeps every block readable.
  store.FailSite(0);
  store.FailSite(1);
  for (BlockId id = 0; id < 20; ++id) {
    const RequestBreakdown r = RunSingleGet(store, {id});
    EXPECT_TRUE(r.ok) << "block " << id;
  }
  // Failed sites never served reads after failing (they were idle before).
  const auto bytes = store.SiteBytesRead();
  EXPECT_EQ(bytes[0], 0u);
  EXPECT_EQ(bytes[1], 0u);
}

TEST(SimStoreTest, TooManyFailuresReportNotOk) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 5, 100 * 1024);
  const BlockInfo info = store.state().GetBlock(0);
  store.FailSite(info.locations[0].site);
  store.FailSite(info.locations[1].site);
  store.FailSite(info.locations[2].site);
  const RequestBreakdown r = RunSingleGet(store, {0});
  EXPECT_FALSE(r.ok);
}

TEST(SimStoreTest, StatsServicesFeedLoadTracker) {
  ECStoreConfig config = TinyConfig(Technique::kEcC);
  SimECStore store(config);
  store.LoadBlocks(0, 50, 100 * 1024);
  store.Start();
  // Sustained closed-loop load spanning several stats ticks.
  std::uint64_t issued = 0;
  std::function<void()> issue = [&] {
    if (store.queue().Now() >= 11 * kSecond) return;
    ++issued;
    store.Get({static_cast<BlockId>(issued % 50)},
              [&](const RequestBreakdown&) { issue(); });
  };
  for (int c = 0; c < 4; ++c) issue();
  store.queue().RunUntil(12 * kSecond);
  // Probes updated o_j away from the initial constant for at least one site.
  bool any_probed = false;
  for (SiteId j = 0; j < 8; ++j) {
    if (store.load_tracker().OverheadMs(j) != 5.0) any_probed = true;
  }
  EXPECT_TRUE(any_probed);
  EXPECT_GT(store.RequestRate(), 0.0);
  EXPECT_GT(store.Usage().stats_network_bytes, 0u);
}

TEST(SimStoreTest, MoverRelocatesChunksUnderCoAccess) {
  ECStoreConfig config = TinyConfig(Technique::kEcCM);
  config.mover_chunks_per_sec = 5.0;  // Faster for the test.
  SimECStore store(config);
  store.LoadBlocks(0, 30, 100 * 1024);
  store.Start();

  // Strong co-access pattern: blocks 0 and 1 always together.
  std::function<void()> issue = [&] {
    store.Get({0, 1}, [&](const RequestBreakdown&) {
      if (store.queue().Now() < 60 * kSecond) issue();
    });
  };
  issue();
  store.queue().RunUntil(90 * kSecond);

  EXPECT_GT(store.Usage().moves_executed, 0u);
  EXPECT_GT(store.Usage().mover_network_bytes, 0u);
}

TEST(SimStoreTest, MoverDisabledForPlainEc) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 10, 100 * 1024);
  store.Start();
  for (int i = 0; i < 20; ++i) (void)RunSingleGet(store, {0, 1});
  store.queue().RunUntil(store.queue().Now() + 30 * kSecond);
  EXPECT_EQ(store.Usage().moves_executed, 0u);
}

TEST(SimStoreTest, ImbalanceLambdaZeroWhenUniform) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 8, 100 * 1024);
  const std::vector<std::uint64_t> baseline(8, 0);
  EXPECT_EQ(store.ImbalanceLambda(baseline), 0.0);  // No reads yet.
}

TEST(SimStoreTest, ImbalanceLambdaDetectsSkew) {
  SimECStore store(TinyConfig(Technique::kEc));
  store.LoadBlocks(0, 40, 100 * 1024);
  const auto baseline = store.SiteBytesRead();
  // Hammer one block: its chunk sites absorb all I/O.
  for (int i = 0; i < 30; ++i) (void)RunSingleGet(store, {0});
  EXPECT_GT(store.ImbalanceLambda(baseline), 50.0);
}

TEST(SimStoreTest, DeterministicForSameSeed) {
  auto run = [] {
    SimECStore store(TinyConfig(Technique::kEcCM));
    store.LoadBlocks(0, 20, 100 * 1024);
    store.Start();
    std::vector<SimTime> latencies;
    std::function<void()> issue = [&] {
      store.Get({1, 2, 3}, [&](const RequestBreakdown& r) {
        latencies.push_back(r.total);
        if (latencies.size() < 50) issue();
      });
    };
    issue();
    store.queue().RunUntil(5 * kMinute);
    return latencies;
  };
  EXPECT_EQ(run(), run());
}

TEST(RepairServiceTest, ReconstructsAfterGracePeriod) {
  ECStoreConfig config = TinyConfig(Technique::kEcC);
  config.repair_wait = 30 * kSecond;  // Shorten the 15 min for the test.
  config.repair_poll_interval = 1 * kSecond;
  SimECStore store(config);
  store.LoadBlocks(0, 20, 100 * 1024);

  SiteId repaired_site = kInvalidSite;
  std::uint64_t repaired_chunks = 0;
  RepairService repair(&store, [&](SiteId s, std::uint64_t n) {
    repaired_site = s;
    repaired_chunks = n;
  });
  store.Start();
  repair.Start();

  const auto lost = store.state().BlocksWithChunkAt(2);
  store.FailSite(2);
  store.queue().RunUntil(60 * kSecond);

  EXPECT_EQ(repaired_site, 2u);
  EXPECT_EQ(repaired_chunks, lost.size());
  EXPECT_EQ(repair.chunks_rebuilt(), lost.size());
  // Every block is back to full strength on available sites.
  for (BlockId id : lost) {
    EXPECT_EQ(store.state().AvailableLocations(id).size(), 4u);
  }
}

TEST(RepairServiceTest, RecoveryDuringGracePeriodCancelsRepair) {
  ECStoreConfig config = TinyConfig(Technique::kEcC);
  config.repair_wait = 30 * kSecond;
  config.repair_poll_interval = 1 * kSecond;
  SimECStore store(config);
  store.LoadBlocks(0, 20, 100 * 1024);
  RepairService repair(&store);
  store.Start();
  repair.Start();

  store.FailSite(2);
  store.queue().RunUntil(10 * kSecond);
  store.RecoverSite(2);  // Transient outage.
  store.queue().RunUntil(120 * kSecond);
  EXPECT_EQ(repair.chunks_rebuilt(), 0u);
}

}  // namespace
}  // namespace ecstore
