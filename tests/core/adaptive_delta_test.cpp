// ControlPlane tail model (DESIGN.md §13): the adaptive late-binding
// delta policy, the variance-aware cost term, the service-sample ingest
// paths, and the delta-keyed plan cache.
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/state.h"
#include "core/control_plane.h"
#include "placement/cost_model.h"

namespace ecstore {
namespace {

struct PlaneFixture {
  explicit PlaneFixture(Technique technique, std::size_t sites = 8)
      : config(ECStoreConfig::ForTechnique(technique)), state(sites), rng(42) {
    config.num_sites = sites;
  }

  // Builds the plane after the test has adjusted `config`.
  ControlPlane& plane() {
    if (!plane_) {
      plane_ = std::make_unique<ControlPlane>(
          &config, &state, &rng,
          [this](ControlPlane::Deferred w) { deferred.push_back(std::move(w)); });
    }
    return *plane_;
  }

  void DrainDeferred() {
    while (!deferred.empty()) {
      auto work = std::move(deferred.front());
      deferred.pop_front();
      work();
    }
  }

  // 2% of fetches stall 20x — the flash-crowd acceptance regime.
  void FeedStalls(SiteId site, int n = 1000) {
    for (int i = 0; i < n; ++i) {
      plane().RecordServiceTime(site, i % 50 == 0 ? 100.0 : 5.0);
    }
  }

  ECStoreConfig config;
  ClusterState state;
  Rng rng;
  std::deque<ControlPlane::Deferred> deferred;
  std::unique_ptr<ControlPlane> plane_;
};

TEST(AdaptiveDeltaTest, OffReturnsStaticEffectiveDelta) {
  PlaneFixture f(Technique::kEcCMLb);
  ASSERT_FALSE(f.config.adaptive_delta);
  f.FeedStalls(0);  // Even a noisy cluster must not move the static delta.
  EXPECT_EQ(f.plane().AdaptiveDelta(), f.config.EffectiveDelta());
  EXPECT_EQ(f.plane().AdaptiveDelta(), 1u);
}

TEST(AdaptiveDeltaTest, NonLateBindingTechniqueIgnoresPolicy) {
  PlaneFixture f(Technique::kEcCM);
  f.config.adaptive_delta = true;
  f.FeedStalls(0);
  // EC+C+M never late-binds: delta stays 0 regardless of variance.
  EXPECT_EQ(f.plane().AdaptiveDelta(), 0u);
}

TEST(AdaptiveDeltaTest, QuietClusterCollapsesToZero) {
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  // No samples at all: nothing suggests stragglers, full trim.
  EXPECT_EQ(f.plane().AdaptiveDelta(), 0u);
  // Constant service times: still zero.
  for (int i = 0; i < 200; ++i) f.plane().RecordServiceTime(0, 5.0);
  EXPECT_EQ(f.plane().AdaptiveDelta(), 0u);
}

TEST(AdaptiveDeltaTest, StragglersWidenFanOut) {
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  ASSERT_DOUBLE_EQ(f.config.adaptive_delta_epsilon, 1e-3);
  f.FeedStalls(0);
  f.FeedStalls(1);
  // p ~ 0.02: P[Bin(3, p) > 1] ~ 1.18e-3 still exceeds epsilon, so the
  // policy escalates to the full r = 2.
  EXPECT_EQ(f.plane().AdaptiveDelta(), 2u);
}

TEST(AdaptiveDeltaTest, EpsilonTunesTheEscalation) {
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  f.config.adaptive_delta_epsilon = 2e-3;  // Just above P[Bin(3,.02) > 1].
  f.FeedStalls(0);
  EXPECT_EQ(f.plane().AdaptiveDelta(), 1u);
}

TEST(AdaptiveDeltaTest, CapBoundsTheWidening) {
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  f.config.adaptive_delta_max = 1;
  f.FeedStalls(0);
  EXPECT_EQ(f.plane().AdaptiveDelta(), 1u);
}

TEST(AdaptiveDeltaTest, PerSiteDeltaReactsToPlannedSiteVariance) {
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  ASSERT_DOUBLE_EQ(f.config.adaptive_delta_epsilon, 1e-3);
  // Block 0's chunks live on sites 0-3 only.
  f.state.AddBlock(0, 100 * 1024, 50 * 1024, 2, 2,
                   std::vector<SiteId>{0, 1, 2, 3});
  // Variance concentrated on one *planned* site: site 0 stalls on 10% of
  // its reads while every other site is quiet. The cluster mean dilutes
  // that fraction 8x (p ~ 1.25%); the plan's candidate sites {0,1,2,3}
  // dilute it only 4x (p ~ 2.5%).
  for (int i = 0; i < 1000; ++i) {
    f.plane().RecordServiceTime(0, i % 10 == 0 ? 100.0 : 5.0);
  }
  for (SiteId s = 1; s < 8; ++s) {
    for (int i = 0; i < 200; ++i) f.plane().RecordServiceTime(s, 5.0);
  }
  // Cluster-mean policy: P[Bin(3, .0125) > 1] ~ 4.6e-4 <= eps -> delta 1.
  EXPECT_EQ(f.plane().AdaptiveDelta(), 1u);
  // Per-request policy over the planned sites: P[Bin(3, .025) > 1] ~
  // 1.8e-3 still exceeds eps, so this request escalates to the full r=2.
  const std::vector<BlockId> blocks = {0};
  EXPECT_EQ(f.plane().AdaptiveDelta(blocks), 2u);
}

TEST(AdaptiveDeltaTest, PerRequestFormFallsBackToClusterMean) {
  // A request over blocks with no resolvable sites (unknown ids) uses
  // the cluster-mean fraction rather than claiming a quiet plan.
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  f.FeedStalls(0);
  f.FeedStalls(1);
  const std::vector<BlockId> unknown = {12345};
  EXPECT_EQ(f.plane().AdaptiveDelta(unknown), f.plane().AdaptiveDelta());
}

TEST(AdaptiveDeltaTest, DrawsNoRngFromTheSharedStream) {
  // Planning reproducibility: the policy must be a pure read — a DES run
  // with adaptive delta on consumes exactly the same RNG stream.
  PlaneFixture f(Technique::kEcCMLb);
  f.config.adaptive_delta = true;
  f.FeedStalls(0);
  Rng probe = f.rng;  // Copy of the shared stream's state.
  const std::uint64_t before = probe.Next();
  (void)f.plane().AdaptiveDelta();
  Rng after_probe = f.rng;
  EXPECT_EQ(after_probe.Next(), before);
}

TEST(TailCostTest, ZeroWeightLeavesCostParamsUntouched) {
  PlaneFixture f(Technique::kEcCMLb);
  ASSERT_DOUBLE_EQ(f.config.tail_weight, 0.0);
  const CostParams before = f.plane().CurrentCostParams();
  f.FeedStalls(0);
  const CostParams after = f.plane().CurrentCostParams();
  ASSERT_EQ(before.site_overhead_ms.size(), after.site_overhead_ms.size());
  for (std::size_t j = 0; j < after.site_overhead_ms.size(); ++j) {
    EXPECT_DOUBLE_EQ(after.site_overhead_ms[j], before.site_overhead_ms[j]);
  }
}

TEST(TailCostTest, TailWeightSurchargesHighVarianceSites) {
  PlaneFixture f(Technique::kEcCMLb);
  f.config.tail_weight = 2.0;
  f.FeedStalls(0);  // Site 0 noisy; everyone else quiet.
  const CostParams params = f.plane().CurrentCostParams();
  // o_0 = base + weight * tailexcess; the stalls put p99 - mean near
  // 93 ms, so the surcharge dwarfs the 5 ms idle baseline.
  EXPECT_GT(params.site_overhead_ms[0], 100.0);
  // Quiet sites keep the idle-baseline o_j.
  for (std::size_t j = 1; j < params.site_overhead_ms.size(); ++j) {
    EXPECT_NEAR(params.site_overhead_ms[j], 5.0, 1e-9);
  }
}

TEST(TailCostTest, BatchIngestMatchesSequentialIngest) {
  PlaneFixture a(Technique::kEcCMLb);
  PlaneFixture b(Technique::kEcCMLb);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(i % 50 == 0 ? 80.0 : 4.0);
  for (double s : samples) a.plane().RecordServiceTime(2, s);
  b.plane().RecordServiceSamples(2, samples);
  const LoadTracker& ta = a.plane().load_tracker();
  const LoadTracker& tb = b.plane().load_tracker();
  EXPECT_EQ(ta.latency_samples(2), tb.latency_samples(2));
  EXPECT_DOUBLE_EQ(ta.TailExcessMs(2), tb.TailExcessMs(2));
  EXPECT_DOUBLE_EQ(ta.StragglerFraction(2), tb.StragglerFraction(2));
  EXPECT_DOUBLE_EQ(ta.ClusterStragglerFraction(), tb.ClusterStragglerFraction());
}

TEST(TailCostTest, PlanCacheKeysOnDelta) {
  // Adaptive delta changes per request; a plan solved at delta=1 must
  // not be served for a delta=2 request (it would fan out too narrow).
  PlaneFixture f(Technique::kEcC);
  Rng placement(7);
  std::vector<BlockId> blocks;
  for (BlockId b = 0; b < 4; ++b) {
    f.state.AddBlock(b, 100 * 1024, 50 * 1024, 2, 2,
                     f.state.PickRandomSites(placement, 4));
    blocks.push_back(b);
  }
  const DemandResult d1 = BuildDemands(f.state, blocks, 1);
  // Two misses queue the background solve; draining installs the
  // delta=1 plan in the cache.
  (void)f.plane().SelectAccessPlan(blocks, d1.demands, 1);
  (void)f.plane().SelectAccessPlan(blocks, d1.demands, 1);
  f.DrainDeferred();
  const PlanDecision hit = f.plane().SelectAccessPlan(blocks, d1.demands, 1);
  EXPECT_TRUE(hit.cache_hit());
  const DemandResult d2 = BuildDemands(f.state, blocks, 2);
  const PlanDecision miss = f.plane().SelectAccessPlan(blocks, d2.demands, 2);
  EXPECT_FALSE(miss.cache_hit());
}

}  // namespace
}  // namespace ecstore
