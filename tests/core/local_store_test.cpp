#include "core/local_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> RandomBlock(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

ECStoreConfig SmallConfig(Technique t) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(t);
  c.num_sites = 8;
  c.seed = 42;
  return c;
}

TEST(StorageNodeTest, PutGetDelete) {
  StorageNode node;
  node.PutChunk(1, 0, {1, 2, 3});
  EXPECT_TRUE(node.HasChunk(1, 0));
  EXPECT_EQ(node.bytes_stored(), 3u);
  const std::shared_ptr<const ChunkData> got = node.GetChunk(1, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, (ChunkData{1, 2, 3}));
  EXPECT_EQ(node.GetChunk(1, 1), nullptr);
  EXPECT_TRUE(node.DeleteChunk(1, 0));
  EXPECT_FALSE(node.DeleteChunk(1, 0));
  EXPECT_EQ(node.bytes_stored(), 0u);
}

TEST(StorageNodeTest, OverwriteAdjustsBytes) {
  StorageNode node;
  node.PutChunk(1, 0, ChunkData(100));
  node.PutChunk(1, 0, ChunkData(40));
  EXPECT_EQ(node.bytes_stored(), 40u);
  EXPECT_EQ(node.chunk_count(), 1u);
}

TEST(StorageNodeTest, FailedNodeReadsAsMiss) {
  // A failed node answers nullptr, not an exception: under concurrency a
  // site can fail between planning and fetch, and the miss must route the
  // read into the degraded path rather than unwind the fetch worker.
  StorageNode node;
  node.PutChunk(1, 0, {1});
  node.set_available(false);
  EXPECT_EQ(node.GetChunk(1, 0), nullptr);
  node.set_available(true);
  ASSERT_NE(node.GetChunk(1, 0), nullptr);  // Data survived the outage.
}

TEST(StorageNodeTest, ChunkHandleOutlivesDelete) {
  // Readers hold chunks by shared_ptr: a concurrent delete (movement,
  // Remove) must not invalidate bytes already handed out.
  StorageNode node;
  node.PutChunk(1, 0, {7, 8, 9});
  const std::shared_ptr<const ChunkData> got = node.GetChunk(1, 0);
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(node.DeleteChunk(1, 0));
  EXPECT_EQ(*got, (ChunkData{7, 8, 9}));
}

class LocalStoreRoundTrip : public ::testing::TestWithParam<Technique> {};

TEST_P(LocalStoreRoundTrip, PutGetRestoresBytes) {
  LocalECStore store(SmallConfig(GetParam()));
  Rng rng(1);
  for (BlockId id = 0; id < 20; ++id) {
    const auto block = RandomBlock(1000 + id * 37, rng);
    store.Put(id, block);
    EXPECT_EQ(store.Get(id), block) << "block " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, LocalStoreRoundTrip,
                         ::testing::Values(Technique::kReplication, Technique::kEc,
                                           Technique::kEcLb, Technique::kEcC,
                                           Technique::kEcCM, Technique::kEcCMLb));

TEST(LocalStoreTest, MultiGetAlignsWithIds) {
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(2);
  std::vector<std::vector<std::uint8_t>> blocks;
  for (BlockId id = 0; id < 5; ++id) {
    blocks.push_back(RandomBlock(500 + id, rng));
    store.Put(id, blocks.back());
  }
  const std::vector<BlockId> ids = {4, 0, 2};
  const auto result = store.MultiGet(ids);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0], blocks[4]);
  EXPECT_EQ(result[1], blocks[0]);
  EXPECT_EQ(result[2], blocks[2]);
}

TEST(LocalStoreTest, StorageOverheadMatchesScheme) {
  // The paper's storage claim: replication stores 1.5x what RS(2,2) does.
  const std::size_t kBlock = 10000;
  LocalECStore ec(SmallConfig(Technique::kEc));
  LocalECStore rep(SmallConfig(Technique::kReplication));
  Rng rng(3);
  for (BlockId id = 0; id < 10; ++id) {
    const auto block = RandomBlock(kBlock, rng);
    ec.Put(id, block);
    rep.Put(id, block);
  }
  EXPECT_EQ(ec.TotalStoredBytes(), 10 * 2 * kBlock);
  EXPECT_EQ(rep.TotalStoredBytes(), 10 * 3 * kBlock);
}

TEST(LocalStoreTest, RemoveDeletesEverywhere) {
  LocalECStore store(SmallConfig(Technique::kEc));
  Rng rng(4);
  store.Put(1, RandomBlock(100, rng));
  EXPECT_TRUE(store.Remove(1));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_EQ(store.TotalStoredBytes(), 0u);
  EXPECT_FALSE(store.Remove(1));
  EXPECT_THROW(store.Get(1), std::exception);
}

TEST(LocalStoreTest, SurvivesRFailures) {
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(5);
  const auto block = RandomBlock(4096, rng);
  store.Put(1, block);
  // Fail r = 2 of the 4 chunk sites.
  const BlockInfo& info = store.state().GetBlock(1);
  store.FailSite(info.locations[0].site);
  store.FailSite(info.locations[2].site);
  EXPECT_EQ(store.Get(1), block);  // Degraded read succeeds.
}

TEST(LocalStoreTest, TooManyFailuresThrow) {
  LocalECStore store(SmallConfig(Technique::kEc));
  Rng rng(6);
  store.Put(1, RandomBlock(256, rng));
  const BlockInfo info = store.state().GetBlock(1);
  store.FailSite(info.locations[0].site);
  store.FailSite(info.locations[1].site);
  store.FailSite(info.locations[2].site);  // Only 1 of 4 chunks left < k.
  EXPECT_THROW(store.Get(1), std::runtime_error);
}

TEST(LocalStoreTest, RepairRestoresFaultTolerance) {
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(7);
  std::vector<std::vector<std::uint8_t>> blocks;
  for (BlockId id = 0; id < 10; ++id) {
    blocks.push_back(RandomBlock(2048, rng));
    store.Put(id, blocks.back());
  }
  const SiteId victim = 3;
  const auto lost = store.state().BlocksWithChunkAt(victim);
  store.FailSite(victim);
  const std::uint64_t rebuilt = store.RepairSite(victim);
  EXPECT_EQ(rebuilt, lost.size());
  // After repair, every block tolerates r fresh failures even with the
  // victim still down, and data is intact.
  for (BlockId id = 0; id < 10; ++id) {
    EXPECT_EQ(store.state().AvailableLocations(id).size(), 4u);
    EXPECT_EQ(store.Get(id), blocks[id]);
  }
}

TEST(LocalStoreTest, RepairedChunkHasCorrectContent) {
  // Fail a site, repair, recover the site, fail the *other* original
  // sites: reads must now rely on the reconstructed chunk.
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(8);
  const auto block = RandomBlock(3333, rng);
  store.Put(1, block);
  const BlockInfo before = store.state().GetBlock(1);
  const SiteId victim = before.locations[0].site;
  store.FailSite(victim);
  ASSERT_EQ(store.RepairSite(victim), 1u);
  store.RecoverSite(victim);

  // Fail two of the three untouched original sites; the surviving set
  // includes the reconstructed chunk.
  store.FailSite(before.locations[1].site);
  store.FailSite(before.locations[2].site);
  EXPECT_EQ(store.Get(1), block);
}

TEST(LocalStoreTest, MovementPreservesData) {
  ECStoreConfig config = SmallConfig(Technique::kEcCM);
  LocalECStore store(config);
  Rng rng(9);
  std::vector<std::vector<std::uint8_t>> blocks;
  for (BlockId id = 0; id < 8; ++id) {
    blocks.push_back(RandomBlock(1024, rng));
    store.Put(id, blocks.back());
  }
  // Create a co-access pattern so the mover has something to chew on.
  for (int round = 0; round < 50; ++round) {
    const std::vector<BlockId> pair = {0, 1};
    (void)store.MultiGet(pair);
  }
  int moves = 0;
  for (int round = 0; round < 10; ++round) {
    if (store.RunMovementRound()) ++moves;
  }
  // Whether or not moves happened, data integrity holds.
  for (BlockId id = 0; id < 8; ++id) {
    EXPECT_EQ(store.Get(id), blocks[id]) << "after " << moves << " moves";
  }
}

TEST(LocalStoreTest, MovementImprovesCoLocation) {
  // Strong co-access between blocks 0 and 1 should eventually co-locate
  // chunks so the pair is readable from fewer sites.
  ECStoreConfig config = SmallConfig(Technique::kEcCM);
  config.mover.candidate_blocks = 8;
  // Isolate the co-access objective (E): with only two live blocks the
  // load term would otherwise dominate and keep shuffling chunks toward
  // idle sites.
  config.mover.w2 = 0;
  LocalECStore store(config);
  Rng rng(10);
  for (BlockId id = 0; id < 6; ++id) store.Put(id, RandomBlock(2048, rng));

  const auto shared_sites = [&] {
    int shared = 0;
    for (SiteId j = 0; j < store.state().num_sites(); ++j) {
      if (store.state().HasChunkAt(0, j) && store.state().HasChunkAt(1, j)) ++shared;
    }
    return shared;
  };

  for (int round = 0; round < 200; ++round) {
    const std::vector<BlockId> pair = {0, 1};
    (void)store.MultiGet(pair);
    if (round % 5 == 0) (void)store.RunMovementRound();
  }
  // With k = 2, two shared sites let the whole pair be read co-located —
  // the minimum the optimizer needs; extra overlap is irrelevant to cost.
  EXPECT_GE(shared_sites(), 2);
}

TEST(LocalStoreTest, SiteFailingMidMultiGetFallsBackToSurvivors) {
  // Regression: a node that dies after planning (metadata still lists it
  // as available) used to make MultiGet throw "chunk missing at planned
  // site". The fetch loop must replan around the dead node instead.
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(12);
  const auto block = RandomBlock(4096, rng);
  store.Put(1, block);

  // Kill the node only — no FailSite — so the cluster state (and any
  // plan derived from it) still points at the dead site.
  const BlockInfo& info = store.state().GetBlock(1);
  store.node(info.locations[0].site).set_available(false);
  EXPECT_EQ(store.Get(1), block);

  // A second undetected failure still leaves k = 2 reachable chunks.
  store.node(info.locations[1].site).set_available(false);
  EXPECT_EQ(store.Get(1), block);

  // A third leaves fewer than k: the degraded replan must give up loudly.
  store.node(info.locations[2].site).set_available(false);
  EXPECT_THROW(store.Get(1), std::runtime_error);
}

TEST(LocalStoreTest, CachedPlanSurvivesNodeFailure) {
  // Warm the plan cache for a block set, then fail a planned-at node
  // without updating metadata: the cached plan validates against the
  // (stale) state, the fetch falls back, and data still comes back right.
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(13);
  std::vector<std::vector<std::uint8_t>> blocks;
  for (BlockId id = 0; id < 3; ++id) {
    blocks.push_back(RandomBlock(2000 + id, rng));
    store.Put(id, blocks.back());
  }
  const std::vector<BlockId> ids = {0, 1, 2};
  // Miss -> registered; miss -> ILP queued and drained; third is a hit.
  (void)store.MultiGet(ids);
  (void)store.MultiGet(ids);
  (void)store.MultiGet(ids);
  ASSERT_GT(store.plan_cache().hits(), 0u);

  const BlockInfo& info = store.state().GetBlock(0);
  store.node(info.locations[0].site).set_available(false);
  const auto result = store.MultiGet(ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(result[i], blocks[ids[i]]);
  }
}

TEST(LocalStoreTest, IlpRunsOnlyInBackground) {
  // The request path serves cache hits and greedy fallbacks; ILP solves
  // happen in the drained background queue, gated on a set recurring.
  LocalECStore store(SmallConfig(Technique::kEcC));
  Rng rng(14);
  for (BlockId id = 0; id < 4; ++id) store.Put(id, RandomBlock(1024, rng));

  const std::vector<BlockId> ids = {0, 1, 2, 3};
  (void)store.MultiGet(ids);  // First miss: set registered, no solve.
  EXPECT_EQ(store.Usage().ilp_solves, 0u);
  (void)store.MultiGet(ids);  // Recurrence: solve queued, drained after.
  EXPECT_EQ(store.Usage().ilp_solves, 1u);
  (void)store.MultiGet(ids);  // Served from the cache.
  EXPECT_GT(store.plan_cache().hits(), 0u);
  EXPECT_EQ(store.Usage().ilp_solves, 1u);
}

TEST(LocalStoreTest, UsageExposesSharedAccounting) {
  LocalECStore store(SmallConfig(Technique::kEcCM));
  Rng rng(15);
  for (BlockId id = 0; id < 8; ++id) store.Put(id, RandomBlock(1024, rng));
  for (int round = 0; round < 40; ++round) {
    const std::vector<BlockId> pair = {0, 1};
    (void)store.MultiGet(pair);
  }
  std::uint64_t moved = 0;
  for (int round = 0; round < 10; ++round) {
    if (store.RunMovementRound()) ++moved;
  }
  const ControlPlaneUsage usage = store.Usage();
  EXPECT_GT(usage.stats_memory_bytes, 0u);
  EXPECT_GT(usage.mover_memory_bytes, 0u);
  EXPECT_EQ(usage.moves_executed, moved);
  if (moved > 0) EXPECT_GT(usage.mover_network_bytes, 0u);
}

TEST(LocalStoreTest, IdleRefreshStillRecordsProbes) {
  // Regression: RefreshLoadFromCounters used to early-return when no
  // reads happened since the last refresh, freezing o_j at the last busy
  // epoch — drift detection could never see a hot site recover. An idle
  // refresh must still record probes that decay o_j toward the baseline.
  LocalECStore store(SmallConfig(Technique::kEcCM));
  Rng rng(16);
  for (BlockId id = 0; id < 8; ++id) store.Put(id, RandomBlock(1024, rng));

  // Busy phase: concentrate reads so refresh sees skewed utilization and
  // probes push some o_j above others.
  for (int round = 0; round < 130; ++round) {
    const std::vector<BlockId> pair = {0, 1};
    (void)store.MultiGet(pair);
  }
  double max_overhead = 0;
  for (SiteId j = 0; j < store.state().num_sites(); ++j) {
    max_overhead = std::max(max_overhead, store.load_tracker().OverheadMs(j));
  }
  ASSERT_GT(max_overhead, 1.0);  // Some site looked busy.

  // Idle phase: movement rounds refresh with zero reads in the window.
  for (int round = 0; round < 10; ++round) (void)store.RunMovementRound();
  double max_after = 0;
  for (SiteId j = 0; j < store.state().num_sites(); ++j) {
    max_after = std::max(max_after, store.load_tracker().OverheadMs(j));
  }
  // Idle probes report the 1 ms baseline, so every o_j decays toward it.
  EXPECT_LT(max_after, max_overhead);
  EXPECT_LT(max_after, 1.5);
}

TEST(LocalStoreTest, LateBindingStillDecodes) {
  ECStoreConfig config = SmallConfig(Technique::kEcCMLb);
  config.late_binding_delta = 1;
  LocalECStore store(config);
  Rng rng(11);
  const auto block = RandomBlock(999, rng);
  store.Put(1, block);
  EXPECT_EQ(store.Get(1), block);  // Fetches k+1, decodes from k.
}

}  // namespace
}  // namespace ecstore
