// Robustness-layer tests (DESIGN.md §9): checksum verification end to
// end, the scrubber, the bounded-retry fetch path, the repair service's
// grace-period semantics, and detector-driven failure marking in both
// embodiments — all deterministic (fixed seeds, explicit Poll/clock
// calls), no wall-clock races.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "core/local_store.h"
#include "core/repair.h"
#include "core/sim_store.h"
#include "fault/fault_schedule.h"
#include "fault/injector.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> MakeBlock(std::size_t n, std::uint64_t tag) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>((tag * 131) ^ (i * 31) ^ (i >> 8));
  }
  return data;
}

ECStoreConfig LocalConfig(Technique t = Technique::kEcCMLb) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(t);
  c.num_sites = 8;
  c.k = 2;
  c.r = 2;
  c.seed = 11;
  return c;
}

// ---------------------------------------------------------------------------
// Checksums: corruption becomes an erasure, never returned data, and the
// scrubber rewrites the bad chunk in place (the acceptance-criteria unit
// test for the corrupt-chunk path).

TEST(RobustnessTest, CorruptChunkIsErasedDecodedAroundAndScrubbed) {
  LocalECStore store(LocalConfig());
  const auto data = MakeBlock(64 * 1024, 1);
  store.Put(1, data);

  // Corrupt r = 2 of the 4 chunks: any bit-exact read from here on proves
  // at least one corrupt chunk was fetched, caught by its checksum, and
  // decoded around (with 2 corrupt chunks, no plan of k + delta = 3 can
  // avoid both).
  const BlockInfo info = store.state().GetBlock(1);
  ASSERT_EQ(info.locations.size(), 4u);
  for (std::size_t i = 0; i < 2; ++i) {
    const ChunkLocation& loc = info.locations[i];
    ASSERT_TRUE(store.node(loc.site).CorruptChunk(1, loc.chunk));
    // The node-level guarantee: a corrupt chunk is never handed out.
    EXPECT_EQ(store.node(loc.site).GetChunk(1, loc.chunk), nullptr);
    EXPECT_TRUE(store.node(loc.site).HasChunk(1, loc.chunk));
    EXPECT_FALSE(store.node(loc.site).HasValidChunk(1, loc.chunk));
  }

  EXPECT_EQ(store.Get(1), data);  // Bit-exact despite 2 corrupt chunks.

  ControlPlaneUsage usage = store.Usage();
  EXPECT_GE(usage.checksum_failures, 1u);

  // The scrubber rewrites both bad chunks in place from valid survivors.
  EXPECT_EQ(store.ScrubOnce(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const ChunkLocation& loc = info.locations[i];
    EXPECT_TRUE(store.node(loc.site).HasValidChunk(1, loc.chunk));
  }
  usage = store.Usage();
  EXPECT_EQ(usage.chunks_scrubbed, 2u);
  EXPECT_EQ(store.Get(1), data);
  EXPECT_EQ(store.ScrubOnce(), 0u);  // Nothing left to fix.
}

TEST(RobustnessTest, ScrubberHealsWritesDroppedByCrashedNode) {
  LocalECStore store(LocalConfig());
  // Crash a node silently, then write: the cluster state still believes
  // the site is up, so placement may choose it — those chunk writes are
  // dropped, leaving redundancy holes.
  store.CrashNode(3);
  std::vector<BlockId> holed;
  for (BlockId id = 0; id < 24; ++id) {
    store.Put(id, MakeBlock(4096, id));
    const BlockInfo& info = store.state().GetBlock(id);
    for (const ChunkLocation& loc : info.locations) {
      if (loc.site == 3) {
        EXPECT_FALSE(store.node(3).HasChunk(id, loc.chunk));
        holed.push_back(id);
      }
    }
  }
  ASSERT_FALSE(holed.empty()) << "placement never chose the crashed site";

  // Node comes back (a flap): the scrubber rebuilds the dropped chunks.
  store.HealNode(3);
  EXPECT_EQ(store.ScrubOnce(), holed.size());
  for (BlockId id : holed) {
    const BlockInfo& info = store.state().GetBlock(id);
    for (const ChunkLocation& loc : info.locations) {
      EXPECT_TRUE(store.node(loc.site).HasValidChunk(id, loc.chunk));
    }
    EXPECT_EQ(store.Get(id), MakeBlock(4096, id));
  }
}

// ---------------------------------------------------------------------------
// Bounded retry: injected transient fetch errors are retried and never
// surface to the client.

TEST(RobustnessTest, TransientFetchErrorsAreRetriedToCompletion) {
  ECStoreConfig config = LocalConfig();
  config.data_plane.retry.max_retries = 4;
  config.data_plane.retry.backoff_base_ms = 0.5;
  LocalECStore store(config);
  for (BlockId id = 0; id < 16; ++id) store.Put(id, MakeBlock(8192, id));

  // Heavy transient error rates on half the cluster.
  for (SiteId j = 0; j < 4; ++j) store.node(j).set_fetch_error(0.5, 99 + j);

  for (int pass = 0; pass < 4; ++pass) {
    for (BlockId id = 0; id < 16; ++id) {
      EXPECT_EQ(store.Get(id), MakeBlock(8192, id));
    }
  }
  std::uint64_t injected = 0;
  for (SiteId j = 0; j < 4; ++j) injected += store.node(j).injected_fetch_errors();
  EXPECT_GE(injected, 1u) << "error injection never fired";

  const ControlPlaneUsage usage = store.Usage();
  // Every injected error was absorbed by a retry round or the degraded
  // top-up — and the counters saw it.
  EXPECT_GE(usage.retried_fetches + usage.degraded_reads, 1u);

  for (SiteId j = 0; j < 4; ++j) store.node(j).set_fetch_error(0.0);
  const std::uint64_t before = store.node(0).injected_fetch_errors();
  store.Get(5);
  EXPECT_EQ(store.node(0).injected_fetch_errors(), before);  // Switched off.
}

// ---------------------------------------------------------------------------
// Repair grace period (satellite regression test): a flap shorter than
// repair_wait triggers zero rebuilds; a site dead past the deadline is
// rebuilt exactly once, no matter how often the service polls.

TEST(RobustnessTest, RepairGracePeriodSemantics) {
  ECStoreConfig config = LocalConfig();
  config.repair_wait = FromMillis(100);
  LocalECStore store(config);
  for (BlockId id = 0; id < 20; ++id) store.Put(id, MakeBlock(4096, id));
  const std::uint64_t lost = store.state().BlocksWithChunkAt(2).size();
  ASSERT_GT(lost, 0u);

  RepairService& repair = store.repair_service();
  // Flap: down at t=0 (first seen by the poll at t=10ms), back before the
  // 100ms grace expires. No rebuild may fire.
  store.FailSite(2);
  repair.Poll(FromMillis(10));
  repair.Poll(FromMillis(60));
  EXPECT_EQ(repair.chunks_rebuilt(), 0u);
  store.RecoverSite(2);
  repair.Poll(FromMillis(90));
  repair.Poll(FromMillis(500));  // Long after: the outage ended in time.
  EXPECT_EQ(repair.chunks_rebuilt(), 0u);
  EXPECT_EQ(store.state().BlocksWithChunkAt(2).size(), lost);

  // Crash-stop: down past the grace deadline is rebuilt exactly once,
  // however many times the service polls afterwards.
  store.FailSite(2);
  repair.Poll(FromMillis(1000));  // Grace clock starts here.
  EXPECT_EQ(repair.chunks_rebuilt(), 0u);
  repair.Poll(FromMillis(1050));  // Still inside the grace period.
  EXPECT_EQ(repair.chunks_rebuilt(), 0u);
  repair.Poll(FromMillis(1120));  // Past it: rebuild.
  EXPECT_EQ(repair.chunks_rebuilt(), lost);
  repair.Poll(FromMillis(1200));
  repair.Poll(FromMillis(5000));
  EXPECT_EQ(repair.chunks_rebuilt(), lost) << "rebuilt more than once";

  // Full k+r redundancy is restored on real bytes, off the dead site.
  EXPECT_TRUE(store.state().BlocksWithChunkAt(2).empty());
  for (BlockId id = 0; id < 20; ++id) {
    const BlockInfo& info = store.state().GetBlock(id);
    EXPECT_EQ(info.locations.size(), 4u);
    for (const ChunkLocation& loc : info.locations) {
      EXPECT_NE(loc.site, 2u);
      EXPECT_TRUE(store.node(loc.site).HasValidChunk(id, loc.chunk));
    }
    EXPECT_EQ(store.Get(id), MakeBlock(4096, id));
  }
  EXPECT_EQ(store.Usage().chunks_repaired, lost);
}

// ---------------------------------------------------------------------------
// Detector-driven failure marking: a silent crash is noticed from missed
// stats heartbeats alone — no manual FailSite — in the simulator.

TEST(RobustnessTest, SimDetectorMarksSilentCrashDeadAndRevivesOnHeal) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 8;
  config.seed = 3;
  config.stats_report_interval = FromMillis(200);  // Detector: 500/900 ms.
  SimECStore store(config);
  store.LoadBlocks(0, 40, 64 * 1024);
  store.Start();

  store.queue().RunUntil(FromMillis(500));
  store.CrashSite(2);  // Ground truth only: belief still up.
  EXPECT_TRUE(store.state().IsSiteAvailable(2));

  store.queue().RunUntil(FromMillis(3000));
  EXPECT_FALSE(store.state().IsSiteAvailable(2))
      << "missed heartbeats never marked the site dead";
  EXPECT_EQ(store.Usage().sites_marked_dead, 1u);

  // Reads keep completing (replanned around the dead site).
  bool done = false;
  store.Get({0, 1, 2, 3}, [&](const RequestBreakdown& r) {
    done = true;
    EXPECT_TRUE(r.ok);
  });
  store.queue().RunUntil(FromMillis(3000) + 10 * kSecond);
  EXPECT_TRUE(done);

  // Heal: the next heartbeat revives the belief, no manual RecoverSite.
  store.HealSite(2);
  store.queue().RunUntil(store.queue().Now() + 2 * kSecond);
  EXPECT_TRUE(store.state().IsSiteAvailable(2));
}

// A generated fault schedule replayed on the DES event queue: requests
// keep succeeding across a crash, a flap, and a slow-site window, with
// failure-triggered replans surfacing in the robustness counters.

TEST(RobustnessTest, SimSurvivesGeneratedFaultSchedule) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 8;
  config.seed = 5;
  config.stats_report_interval = FromMillis(200);
  SimECStore store(config);
  store.LoadBlocks(0, 60, 64 * 1024);
  store.Start();

  FaultScheduleParams params;
  params.num_sites = 8;
  params.horizon_ms = 4000;
  params.crashes = 1;
  params.flaps = 1;
  params.slow_sites = 1;
  params.fetch_error_sites = 0;  // No real fetches in the DES.
  params.corrupt_sites = 0;      // No real bytes in the DES.
  params.flap_duration_ms = 1500;
  params.slow_duration_ms = 1000;
  const auto events = GenerateFaultSchedule(params, 17);
  ASSERT_EQ(events.size(), 3u);
  const auto actions = ExpandFaultSchedule(events, store.MakeFaultActions());
  ASSERT_EQ(actions.size(), 5u);  // crash + flap(2) + slow(2)
  for (const TimedAction& a : actions) {
    store.queue().ScheduleAt(FromMillis(a.at_ms), a.run);
  }

  // A steady stream of reads across the whole horizon.
  std::uint64_t issued = 0, completed = 0;
  for (double at_ms = 50; at_ms < 6000; at_ms += 50) {
    ++issued;
    store.queue().ScheduleAt(FromMillis(at_ms), [&store, &completed, at_ms] {
      const BlockId base = static_cast<BlockId>(at_ms / 50);
      store.Get({base % 60, (base * 7 + 3) % 60}, [&](const RequestBreakdown& r) {
        EXPECT_TRUE(r.ok);
        ++completed;
      });
    });
  }
  store.queue().RunUntil(60 * kSecond);

  EXPECT_EQ(completed, issued) << "requests lost under the fault schedule";
  const ControlPlaneUsage usage = store.Usage();
  EXPECT_GE(usage.sites_marked_dead, 1u);
  EXPECT_GE(usage.retried_fetches, 1u)
      << "no request ever bounced off a crashed site";
}

}  // namespace
}  // namespace ecstore
