// Concurrency tests for the LocalECStore data plane (DESIGN.md §8):
// parallel MultiGets racing failure injection, recovery, and chunk
// movement; first-k-wins late binding under an injected straggler site;
// the per-fetch deadline hedge; and a site failing mid-fetch. These are
// the tests the TSan CI stage exercises (run_sanitizers.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/local_store.h"

namespace ecstore {
namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::uint8_t> RandomBlock(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

TEST(LocalStoreConcurrencyTest, MultiGetRacesFailureRecoveryAndMovement) {
  // N reader threads hammer MultiGet while a chaos thread fails a site,
  // runs a movement round, and recovers the site, over and over. Every
  // read must return the exact bytes written (k-of-n always reachable:
  // one failed site out of 8 leaves >= k = 2 chunks per block), and
  // nothing may deadlock, crash, or trip TSan.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCM);
  config.num_sites = 8;
  config.seed = 101;
  LocalECStore store(config);

  constexpr BlockId kBlocks = 16;
  Rng rng(17);
  std::vector<std::vector<std::uint8_t>> blocks;
  for (BlockId id = 0; id < kBlocks; ++id) {
    blocks.push_back(RandomBlock(1024 + id * 13, rng));
    store.Put(id, blocks.back());
  }

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> exceptions{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng thread_rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t n = 1 + thread_rng.NextBounded(3);
        std::vector<BlockId> ids;
        for (std::size_t i = 0; i < n; ++i) {
          ids.push_back(thread_rng.NextBounded(kBlocks));
        }
        try {
          const auto result = store.MultiGet(ids);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            if (result[i] != blocks[ids[i]]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
          reads.fetch_add(ids.size(), std::memory_order_relaxed);
        } catch (const std::exception&) {
          // One failed site can never make a block unreadable here, so
          // any throw is a real bug.
          exceptions.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Chaos: fail -> read window -> move -> recover, cycling victims.
  for (int round = 0; round < 40; ++round) {
    const SiteId victim = static_cast<SiteId>(round % config.num_sites);
    store.FailSite(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)store.RunMovementRound();
    store.RecoverSite(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(exceptions.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  // Quiescent final check: every block still round-trips.
  for (BlockId id = 0; id < kBlocks; ++id) {
    EXPECT_EQ(store.Get(id), blocks[id]) << "block " << id;
  }
}

TEST(LocalStoreConcurrencyTest, LateBindingCompletesOnFirstK) {
  // EC+LB with one persistently slow site: plans that include the slow
  // site's chunk still complete on the first k arrivals, so no read waits
  // for the straggler. Plain EC would eat the 400 ms hit whenever its
  // random plan drew the slow site.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcLb);
  config.num_sites = 4;
  config.seed = 7;
  config.late_binding_delta = 1;
  config.data_plane.site_extra_latency_ms = {0, 0, 0, 400.0};
  LocalECStore store(config);

  Rng rng(18);
  const auto block = RandomBlock(4096, rng);
  const std::vector<SiteId> sites = {0, 1, 2, 3};
  store.Put(1, block, sites);

  // k = 2, delta = 1: every read fetches 3 of 4 chunks. Whatever subset
  // the random planner draws, at least k = 2 of the 3 live on fast
  // sites, so first-k-wins completes far below the straggler's 400 ms.
  for (int round = 0; round < 8; ++round) {
    const auto start = Clock::now();
    EXPECT_EQ(store.Get(1), block);
    EXPECT_LT(ElapsedMs(start), 200.0) << "round " << round;
  }
  // The slow site's fetches were raced and lost: stragglers got
  // cancelled at the queue or ignored on arrival, never waited for.
  EXPECT_GT(store.data_plane().jobs_run() + store.data_plane().jobs_cancelled(),
            0u);
}

TEST(LocalStoreConcurrencyTest, DeadlineRetriesAlternateChunk) {
  // Plain EC (no late binding): the plan fetches exactly k chunks. Both
  // planned sites are slow, so the deadline expires and the hedge round
  // fires against the block's untried chunks on fast sites — the read
  // completes at fast-site speed instead of waiting 400 ms.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEc);
  config.num_sites = 4;
  config.seed = 9;
  config.data_plane.site_extra_latency_ms = {400.0, 400.0, 0, 0};
  config.data_plane.fetch_deadline_ms = 25.0;
  LocalECStore store(config);

  Rng rng(19);
  const auto block = RandomBlock(2048, rng);
  const std::vector<SiteId> sites = {0, 1, 2, 3};
  store.Put(1, block, sites);

  // Random EC planning may pick any 2 of the 4 chunks; whichever it
  // picks, the deadline + hedge bounds the read far below 400 ms: at
  // worst both planned fetches hit slow sites, the 25 ms deadline fires,
  // and the hedge completes from sites 2 and 3.
  for (int round = 0; round < 6; ++round) {
    const auto start = Clock::now();
    EXPECT_EQ(store.Get(1), block);
    EXPECT_LT(ElapsedMs(start), 200.0) << "round " << round;
  }
}

TEST(LocalStoreConcurrencyTest, FailSiteMidFetchRoutesToDegradedRead) {
  // A site fails while its fetch sits in the injected-latency window: the
  // node answers nullptr (a miss, not an exception) and the degraded
  // top-up completes the read from surviving chunks.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEc);
  config.num_sites = 4;
  config.seed = 11;
  config.data_plane.base_latency_ms = 60.0;
  LocalECStore store(config);

  Rng rng(20);
  const auto block = RandomBlock(3000, rng);
  const std::vector<SiteId> sites = {0, 1, 2, 3};
  store.Put(1, block, sites);

  std::thread killer([&store] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    store.FailSite(0);
    store.FailSite(1);
  });
  // Whatever pair the plan drew, by the time the 60 ms injected latency
  // elapses sites 0 and 1 are down; misses route into the degraded pass,
  // which reads the survivors directly.
  EXPECT_EQ(store.Get(1), block);
  killer.join();
}

TEST(LocalStoreConcurrencyTest, ConcurrentPutsAndGetsStayConsistent) {
  // Writers appending fresh blocks race readers over the stable prefix;
  // metadata stays consistent and every read returns committed bytes.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 8;
  config.seed = 23;
  LocalECStore store(config);

  constexpr BlockId kStable = 8;
  Rng rng(21);
  std::vector<std::vector<std::uint8_t>> blocks;
  for (BlockId id = 0; id < kStable; ++id) {
    blocks.push_back(RandomBlock(512 + id * 7, rng));
    store.Put(id, blocks.back());
  }

  std::atomic<int> mismatches{0};
  std::thread writer([&] {
    Rng wrng(99);
    for (BlockId id = kStable; id < kStable + 32; ++id) {
      store.Put(id, RandomBlock(256, wrng));
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng thread_rng(500 + t);
      for (int i = 0; i < 200; ++i) {
        const BlockId id = thread_rng.NextBounded(kStable);
        if (store.Get(id) != blocks[id]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  for (BlockId id = 0; id < kStable + 32; ++id) {
    EXPECT_TRUE(store.Contains(id));
  }
}

}  // namespace
}  // namespace ecstore
