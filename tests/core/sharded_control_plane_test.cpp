// Sharded control plane (DESIGN.md §10): shard count must never change
// what a read returns, invalidation must stay confined to the owning
// shard, and the aggregate accessors must sum over shards.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/control_plane.h"
#include "core/local_store.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> PatternBlock(BlockId id, std::size_t n) {
  std::vector<std::uint8_t> block(n);
  for (std::size_t i = 0; i < n; ++i) {
    block[i] = static_cast<std::uint8_t>((id * 131 + i * 7) & 0xFF);
  }
  return block;
}

// The same fixed trace of Puts and MultiGets must return identical bytes
// at every shard count: sharding partitions the bookkeeping, not the
// answers. (Plans may differ — a split co-access window can steer the
// planner differently — but decoded data cannot.)
TEST(ShardedControlPlaneTest, ShardCountsGiveIdenticalGetResults) {
  constexpr BlockId kBlocks = 48;
  constexpr std::size_t kBlockBytes = 2048;

  std::map<std::size_t, std::vector<std::vector<std::uint8_t>>> results;
  for (const std::size_t shards : {1u, 4u, 16u}) {
    ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCM);
    config.num_sites = 10;
    config.seed = 42;
    config.control_plane_shards = shards;
    LocalECStore store(config);
    EXPECT_EQ(store.control_plane().num_shards(), shards);

    for (BlockId id = 0; id < kBlocks; ++id) {
      store.Put(id, PatternBlock(id, kBlockBytes));
    }

    Rng trace(7);  // Same seed per shard count -> same request stream.
    std::vector<std::vector<std::uint8_t>>& out = results[shards];
    for (int req = 0; req < 200; ++req) {
      std::vector<BlockId> ids;
      const std::size_t batch = 1 + trace.NextBounded(4);
      for (std::size_t b = 0; b < batch; ++b) {
        ids.push_back(trace.NextBounded(kBlocks));
      }
      for (auto& bytes : store.MultiGet(ids)) out.push_back(std::move(bytes));
      if (req == 100) store.RunMovementRound();  // Mid-trace moves too.
    }
  }

  ASSERT_EQ(results[1].size(), results[4].size());
  ASSERT_EQ(results[1].size(), results[16].size());
  for (std::size_t i = 0; i < results[1].size(); ++i) {
    EXPECT_EQ(results[1][i], results[4][i]) << "shards=4 diverged at " << i;
    EXPECT_EQ(results[1][i], results[16][i]) << "shards=16 diverged at " << i;
  }
}

// An invalidation storm against blocks owned by one shard must not evict
// entries cached in any other shard (per-shard ownership, class comment
// in control_plane.h).
TEST(ShardedControlPlaneTest, InvalidationStormStaysInOwningShard) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 8;
  config.seed = 9;
  config.control_plane_shards = 4;
  LocalECStore store(config);
  ControlPlane& cp = store.control_plane();
  ASSERT_EQ(cp.num_shards(), 4u);

  constexpr BlockId kBlocks = 64;
  for (BlockId id = 0; id < kBlocks; ++id) {
    store.Put(id, PatternBlock(id, 1024));
  }

  // Warm the cache: two single-block gets per block puts each plan in the
  // block's owning shard (second get may hit; either way the entry is in).
  for (BlockId id = 0; id < kBlocks; ++id) {
    (void)store.Get(id);
    (void)store.Get(id);
  }

  // Pick a victim shard and a storm shard with cached entries.
  std::size_t storm_shard = cp.ShardOf(0);
  std::size_t victim_shard = storm_shard;
  for (BlockId id = 1; id < kBlocks && victim_shard == storm_shard; ++id) {
    if (cp.ShardOf(id) != storm_shard && cp.plan_cache(cp.ShardOf(id)).size() > 0) {
      victim_shard = cp.ShardOf(id);
    }
  }
  ASSERT_NE(victim_shard, storm_shard) << "hash put every block in one shard";
  const std::size_t victim_before = cp.plan_cache(victim_shard).size();
  ASSERT_GT(victim_before, 0u);

  // Storm: invalidate every block owned by the storm shard, many times.
  for (int round = 0; round < 50; ++round) {
    for (BlockId id = 0; id < kBlocks; ++id) {
      if (cp.ShardOf(id) == storm_shard) cp.InvalidateBlock(id);
    }
  }

  EXPECT_EQ(cp.plan_cache(victim_shard).size(), victim_before)
      << "invalidation leaked across shards";
  // And the stormed shard really was scrubbed of its single-block plans.
  for (BlockId id = 0; id < kBlocks; ++id) {
    if (cp.ShardOf(id) != storm_shard) continue;
    // A fresh Get must re-plan (miss) for stormed blocks.
    const auto misses_before = cp.plan_cache(storm_shard).misses();
    (void)store.Get(id);
    EXPECT_GT(cp.plan_cache(storm_shard).misses(), misses_before)
        << "block " << id << " survived the storm";
    break;  // One probe is enough.
  }
}

// CacheTotals and the Usage() gauges aggregate over every shard, not
// just shard 0.
TEST(ShardedControlPlaneTest, AggregatesSumOverShards) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 8;
  config.seed = 3;
  config.control_plane_shards = 8;
  LocalECStore store(config);
  ControlPlane& cp = store.control_plane();

  constexpr BlockId kBlocks = 64;
  for (BlockId id = 0; id < kBlocks; ++id) {
    store.Put(id, PatternBlock(id, 512));
  }
  // Three gets per block: the first two miss (the recurrence gate only
  // queues the background ILP on the second sighting), the third hits
  // the now-cached solve.
  for (BlockId id = 0; id < kBlocks; ++id) {
    (void)store.Get(id);
    (void)store.Get(id);
    (void)store.Get(id);
  }

  std::size_t entries = 0;
  std::uint64_t hits = 0, misses = 0;
  bool multiple_shards_populated = false;
  for (std::size_t sh = 0; sh < cp.num_shards(); ++sh) {
    entries += cp.plan_cache(sh).size();
    hits += cp.plan_cache(sh).hits();
    misses += cp.plan_cache(sh).misses();
    if (sh > 0 && cp.plan_cache(sh).size() > 0) multiple_shards_populated = true;
  }
  EXPECT_TRUE(multiple_shards_populated) << "hash sent every block to shard 0";

  const ControlPlane::PlanCacheTotals totals = cp.CacheTotals();
  EXPECT_EQ(totals.entries, entries);
  EXPECT_EQ(totals.hits, hits);
  EXPECT_EQ(totals.misses, misses);
  EXPECT_GT(totals.hits, 0u);

  // The optimizer memory gauge must see entries beyond shard 0's.
  const ControlPlaneUsage usage = store.Usage();
  std::size_t shard0_only = cp.plan_cache(0).ApproxMemoryBytes();
  EXPECT_GT(usage.optimizer_memory_bytes, shard0_only);
}

// ShardOf is stable, in range, and spreads sequential ids.
TEST(ShardedControlPlaneTest, ShardOfSpreadsSequentialIds) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 4;
  config.control_plane_shards = 8;
  LocalECStore store(config);
  ControlPlane& cp = store.control_plane();

  std::vector<int> per_shard(cp.num_shards(), 0);
  for (BlockId id = 0; id < 1000; ++id) {
    const std::size_t s = cp.ShardOf(id);
    ASSERT_LT(s, cp.num_shards());
    EXPECT_EQ(s, cp.ShardOf(id));  // Stable.
    ++per_shard[s];
  }
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    EXPECT_GT(per_shard[s], 1000 / 16) << "shard " << s << " starved";
  }
}

}  // namespace
}  // namespace ecstore
