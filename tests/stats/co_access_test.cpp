#include "stats/co_access.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ecstore {
namespace {

TEST(CoAccessTest, EmptyTracker) {
  CoAccessTracker t(10);
  EXPECT_EQ(t.Count(1), 0u);
  EXPECT_EQ(t.Lambda(1, 2), 0.0);
  EXPECT_TRUE(t.Partners(1).empty());
  EXPECT_EQ(t.AccessFrequency(1), 0.0);
  EXPECT_EQ(t.requests_in_window(), 0u);
}

TEST(CoAccessTest, CountsBlocks) {
  CoAccessTracker t(10);
  t.RecordRequest(std::vector<BlockId>{1, 2});
  t.RecordRequest(std::vector<BlockId>{1, 3});
  EXPECT_EQ(t.Count(1), 2u);
  EXPECT_EQ(t.Count(2), 1u);
  EXPECT_EQ(t.Count(3), 1u);
  EXPECT_EQ(t.Count(4), 0u);
  EXPECT_EQ(t.distinct_blocks_tracked(), 3u);
}

TEST(CoAccessTest, LambdaIsConditionalProbability) {
  CoAccessTracker t(100);
  // 1 appears 4 times; {1,2} together twice => lambda(1,2) = 0.5.
  t.RecordRequest(std::vector<BlockId>{1, 2});
  t.RecordRequest(std::vector<BlockId>{1, 2});
  t.RecordRequest(std::vector<BlockId>{1, 3});
  t.RecordRequest(std::vector<BlockId>{1});
  EXPECT_DOUBLE_EQ(t.Lambda(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(t.Lambda(1, 3), 0.25);
  // Asymmetry: 2 appears twice, both with 1 => lambda(2,1) = 1.
  EXPECT_DOUBLE_EQ(t.Lambda(2, 1), 1.0);
}

TEST(CoAccessTest, DuplicatesWithinRequestCollapse) {
  CoAccessTracker t(10);
  t.RecordRequest(std::vector<BlockId>{5, 5, 5, 7});
  EXPECT_EQ(t.Count(5), 1u);
  EXPECT_DOUBLE_EQ(t.Lambda(5, 7), 1.0);
}

TEST(CoAccessTest, EmptyRequestIgnored) {
  CoAccessTracker t(10);
  t.RecordRequest(std::vector<BlockId>{});
  EXPECT_EQ(t.requests_in_window(), 0u);
}

TEST(CoAccessTest, WindowEvictsOldRequests) {
  CoAccessTracker t(3);
  t.RecordRequest(std::vector<BlockId>{1, 2});
  t.RecordRequest(std::vector<BlockId>{3});
  t.RecordRequest(std::vector<BlockId>{4});
  EXPECT_EQ(t.Count(1), 1u);
  t.RecordRequest(std::vector<BlockId>{5});  // Evicts {1,2}.
  EXPECT_EQ(t.Count(1), 0u);
  EXPECT_EQ(t.Lambda(1, 2), 0.0);
  EXPECT_EQ(t.requests_in_window(), 3u);
  EXPECT_EQ(t.distinct_blocks_tracked(), 3u);  // 3, 4, 5.
}

TEST(CoAccessTest, WorkloadShiftChangesStatistics) {
  // The paper's Fig. 4a depends on stats adapting after workload change.
  CoAccessTracker t(10);
  for (int i = 0; i < 10; ++i) t.RecordRequest(std::vector<BlockId>{1, 2});
  EXPECT_DOUBLE_EQ(t.Lambda(1, 2), 1.0);
  for (int i = 0; i < 10; ++i) t.RecordRequest(std::vector<BlockId>{1, 3});
  EXPECT_DOUBLE_EQ(t.Lambda(1, 2), 0.0);  // Old pattern fully aged out.
  EXPECT_DOUBLE_EQ(t.Lambda(1, 3), 1.0);
}

TEST(CoAccessTest, PartnersSortedByLambda) {
  CoAccessTracker t(100);
  t.RecordRequest(std::vector<BlockId>{1, 2, 3});
  t.RecordRequest(std::vector<BlockId>{1, 2});
  t.RecordRequest(std::vector<BlockId>{1, 4});
  const auto partners = t.Partners(1);
  ASSERT_EQ(partners.size(), 3u);
  EXPECT_EQ(partners[0].block, 2u);
  EXPECT_NEAR(partners[0].lambda, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(partners[1].lambda >= partners[2].lambda);
}

TEST(CoAccessTest, PartnersRespectsCap) {
  CoAccessTracker t(100);
  std::vector<BlockId> big;
  for (BlockId i = 0; i < 50; ++i) big.push_back(i);
  t.RecordRequest(big);
  EXPECT_EQ(t.Partners(0, 5).size(), 5u);
}

TEST(CoAccessTest, AccessFrequency) {
  CoAccessTracker t(10);
  t.RecordRequest(std::vector<BlockId>{1});
  t.RecordRequest(std::vector<BlockId>{1});
  t.RecordRequest(std::vector<BlockId>{2});
  t.RecordRequest(std::vector<BlockId>{3});
  EXPECT_DOUBLE_EQ(t.AccessFrequency(1), 0.5);
  EXPECT_DOUBLE_EQ(t.AccessFrequency(2), 0.25);
}

TEST(CoAccessTest, SampleCandidatesFavorsFrequent) {
  CoAccessTracker t(1000);
  for (int i = 0; i < 100; ++i) t.RecordRequest(std::vector<BlockId>{1});
  for (int i = 0; i < 2; ++i) t.RecordRequest(std::vector<BlockId>{2});
  Rng rng(3);
  int ones_first = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = t.SampleCandidateBlocks(rng, 1);
    ASSERT_EQ(sample.size(), 1u);
    ones_first += (sample[0] == 1);
  }
  EXPECT_GT(ones_first, 150);  // 100:2 weighting dominates.
}

TEST(CoAccessTest, SampleCandidatesDistinct) {
  CoAccessTracker t(100);
  for (BlockId b = 0; b < 20; ++b) t.RecordRequest(std::vector<BlockId>{b});
  Rng rng(4);
  auto sample = t.SampleCandidateBlocks(rng, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::sort(sample.begin(), sample.end());
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
}

TEST(CoAccessTest, SampleMoreThanTrackedReturnsAll) {
  CoAccessTracker t(100);
  t.RecordRequest(std::vector<BlockId>{1, 2});
  Rng rng(5);
  EXPECT_EQ(t.SampleCandidateBlocks(rng, 50).size(), 2u);
}

TEST(CoAccessTest, MemoryGrowsAndShrinksWithWindow) {
  CoAccessTracker t(5);
  const std::size_t empty = t.ApproxMemoryBytes();
  for (BlockId b = 0; b < 100; b += 2) {
    t.RecordRequest(std::vector<BlockId>{b, b + 1});
  }
  const std::size_t full = t.ApproxMemoryBytes();
  EXPECT_GT(full, empty);
  // Window is 5, so only ~5 requests' worth of state remains even after
  // 50 recorded requests (bounded memory, Section VI-C5).
  EXPECT_EQ(t.requests_in_window(), 5u);
  EXPECT_EQ(t.distinct_blocks_tracked(), 10u);
}

TEST(CoAccessTest, LongRunStaysConsistent) {
  // Property: after any sequence, Count(b) equals the number of windowed
  // requests containing b.
  CoAccessTracker t(50);
  Rng rng(6);
  std::deque<std::vector<BlockId>> shadow;
  for (int step = 0; step < 500; ++step) {
    std::vector<BlockId> q;
    const int n = 1 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < n; ++i) q.push_back(rng.NextBounded(20));
    t.RecordRequest(q);
    std::sort(q.begin(), q.end());
    q.erase(std::unique(q.begin(), q.end()), q.end());
    if (!q.empty()) shadow.push_back(q);
    if (shadow.size() > 50) shadow.pop_front();
  }
  for (BlockId b = 0; b < 20; ++b) {
    std::uint64_t expected = 0;
    for (const auto& q : shadow) {
      expected += std::binary_search(q.begin(), q.end(), b) ? 1 : 0;
    }
    EXPECT_EQ(t.Count(b), expected) << "block " << b;
  }
}

}  // namespace
}  // namespace ecstore
