#include "stats/load_tracker.h"

#include <gtest/gtest.h>

namespace ecstore {
namespace {

TEST(LoadTrackerTest, RejectsZeroSites) {
  EXPECT_THROW(LoadTracker(0), std::invalid_argument);
}

TEST(LoadTrackerTest, StartsIdleWithDefaultOverhead) {
  LoadTracker t(4);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_EQ(t.Omega(s), 0.0);
    EXPECT_DOUBLE_EQ(t.OverheadMs(s), 5.0);
  }
  EXPECT_EQ(t.MeanOmega(), 0.0);
  EXPECT_EQ(t.BalanceFactor(0), 0.0);  // Idle system: no imbalance.
}

TEST(LoadTrackerTest, ReportRaisesOmega) {
  LoadTrackerParams p;
  p.load_alpha = 1.0;  // No smoothing: direct readout.
  LoadTracker t(2, p);
  t.RecordReport(0, 0.8, 0.0, 10);
  EXPECT_DOUBLE_EQ(t.Omega(0), 0.8);
  EXPECT_EQ(t.chunk_count(0), 10u);
  t.RecordReport(0, 0.5, p.reference_io_bytes_per_sec, 10);
  EXPECT_DOUBLE_EQ(t.Omega(0), 1.5);  // cpu + normalized io.
}

TEST(LoadTrackerTest, EwmaSmoothsReports) {
  LoadTrackerParams p;
  p.load_alpha = 0.5;
  LoadTracker t(1, p);
  t.RecordReport(0, 1.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(t.Omega(0), 0.5);
  t.RecordReport(0, 1.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(t.Omega(0), 0.75);
  t.RecordReport(0, 0.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(t.Omega(0), 0.375);  // Decays when load stops.
}

TEST(LoadTrackerTest, BalanceFactorMatchesPaperDefinition) {
  LoadTrackerParams p;
  p.load_alpha = 1.0;
  LoadTracker t(4, p);
  // Loads: 2, 1, 1, 0 => mean 1.
  t.RecordReport(0, 2.0, 0, 0);
  t.RecordReport(1, 1.0, 0, 0);
  t.RecordReport(2, 1.0, 0, 0);
  t.RecordReport(3, 0.0, 0, 0);
  EXPECT_DOUBLE_EQ(t.MeanOmega(), 1.0);
  EXPECT_DOUBLE_EQ(t.BalanceFactor(0), 1.0);  // |1 - 2/1|
  EXPECT_DOUBLE_EQ(t.BalanceFactor(1), 0.0);  // Exactly average.
  EXPECT_DOUBLE_EQ(t.BalanceFactor(3), 1.0);  // |1 - 0/1|
}

TEST(LoadTrackerTest, FirstProbeSetsOverheadDirectly) {
  LoadTracker t(2);
  t.RecordProbe(0, 12.0);
  EXPECT_DOUBLE_EQ(t.OverheadMs(0), 12.0);
  EXPECT_DOUBLE_EQ(t.OverheadMs(1), 5.0);  // Untouched default.
}

TEST(LoadTrackerTest, ProbeEwmaTracksLoadChanges) {
  LoadTrackerParams p;
  p.probe_alpha = 0.5;
  LoadTracker t(1, p);
  t.RecordProbe(0, 10.0);
  t.RecordProbe(0, 20.0);
  EXPECT_DOUBLE_EQ(t.OverheadMs(0), 15.0);
  // Sustained lower RTT converges downward: the feedback loop of
  // Section VI-C2.
  for (int i = 0; i < 20; ++i) t.RecordProbe(0, 2.0);
  EXPECT_NEAR(t.OverheadMs(0), 2.0, 0.1);
}

TEST(LoadTrackerTest, MeanOverhead) {
  LoadTracker t(2);
  t.RecordProbe(0, 4.0);
  t.RecordProbe(1, 8.0);
  EXPECT_DOUBLE_EQ(t.MeanOverheadMs(), 6.0);
}

TEST(LoadTrackerTest, NegativeInputsClamped) {
  LoadTrackerParams p;
  p.load_alpha = 1.0;
  LoadTracker t(1, p);
  t.RecordReport(0, -1.0, -100.0, 0);
  EXPECT_DOUBLE_EQ(t.Omega(0), 0.0);
}

}  // namespace
}  // namespace ecstore
