// LoadTracker tail model (DESIGN.md §13): per-site service-time
// distributions, cached tail/variance/straggler summaries, window
// rotation, and the cluster-wide straggler fraction the adaptive-delta
// policy consumes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/load_tracker.h"

namespace ecstore {
namespace {

LoadTrackerParams FastRefreshParams() {
  LoadTrackerParams p;
  p.latency_refresh_every = 1;  // Summaries always current in tests.
  return p;
}

TEST(LatencyTailTest, StartsWithNoLatencySignal) {
  LoadTracker tracker(4);
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_EQ(tracker.latency_samples(s), 0u);
    EXPECT_EQ(tracker.TailExcessMs(s), 0.0);
    EXPECT_EQ(tracker.LatencyMeanMs(s), 0.0);
    EXPECT_EQ(tracker.LatencyVarianceMs2(s), 0.0);
    EXPECT_EQ(tracker.StragglerFraction(s), 0.0);
  }
  EXPECT_EQ(tracker.ClusterStragglerFraction(), 0.0);
  EXPECT_EQ(tracker.TailExcessVector().size(), 4u);
}

TEST(LatencyTailTest, ConstantServiceTimeHasNoTailExcess) {
  LoadTracker tracker(2, FastRefreshParams());
  for (int i = 0; i < 200; ++i) tracker.RecordServiceTime(0, 5.0);
  EXPECT_EQ(tracker.latency_samples(0), 200u);
  EXPECT_NEAR(tracker.LatencyMeanMs(0), 5.0, 0.1);
  // p99 == mean for a constant stream: no excess, no stragglers.
  EXPECT_NEAR(tracker.TailExcessMs(0), 0.0, 0.1);
  EXPECT_NEAR(tracker.LatencyVarianceMs2(0), 0.0, 1e-6);
  EXPECT_EQ(tracker.StragglerFraction(0), 0.0);
  // Untouched site stays silent.
  EXPECT_EQ(tracker.latency_samples(1), 0u);
  EXPECT_EQ(tracker.TailExcessMs(1), 0.0);
}

TEST(LatencyTailTest, StallsRaiseTailExcessAndStragglerFraction) {
  LoadTracker tracker(2, FastRefreshParams());
  // 2% of fetches stall 20x: the mean barely moves but p99 explodes.
  for (int i = 0; i < 1000; ++i) {
    tracker.RecordServiceTime(0, i % 50 == 0 ? 100.0 : 5.0);
  }
  EXPECT_NEAR(tracker.LatencyMeanMs(0), 6.9, 0.3);
  EXPECT_GT(tracker.TailExcessMs(0), 50.0);
  EXPECT_GT(tracker.LatencyVarianceMs2(0), 100.0);
  // Stalls are ~14x the mean, beyond the 5x straggler multiple.
  EXPECT_NEAR(tracker.StragglerFraction(0), 0.02, 0.005);
  // Cluster fraction averages only over sites WITH samples: one noisy
  // site out of one observed site, not diluted by the silent site.
  EXPECT_NEAR(tracker.ClusterStragglerFraction(), 0.02, 0.005);
}

TEST(LatencyTailTest, ClusterFractionAveragesObservedSites) {
  LoadTracker tracker(4, FastRefreshParams());
  for (int i = 0; i < 1000; ++i) {
    tracker.RecordServiceTime(0, i % 50 == 0 ? 100.0 : 5.0);  // 2% stalls.
    tracker.RecordServiceTime(1, 5.0);                        // Quiet.
  }
  const double noisy = tracker.StragglerFraction(0);
  EXPECT_GT(noisy, 0.0);
  EXPECT_EQ(tracker.StragglerFraction(1), 0.0);
  EXPECT_NEAR(tracker.ClusterStragglerFraction(), noisy / 2, 1e-9);
}

TEST(LatencyTailTest, WindowRotationForgetsOldRegime) {
  LoadTrackerParams params = FastRefreshParams();
  params.latency_window = 100;
  LoadTracker tracker(1, params);
  // A stormy first window...
  for (int i = 0; i < 100; ++i) {
    tracker.RecordServiceTime(0, i % 10 == 0 ? 100.0 : 5.0);
  }
  EXPECT_GT(tracker.TailExcessMs(0), 10.0);
  // ...then calm. After two full rotations the storm has aged out of
  // both the previous and current windows.
  for (int i = 0; i < 200; ++i) tracker.RecordServiceTime(0, 5.0);
  EXPECT_NEAR(tracker.TailExcessMs(0), 0.0, 0.2);
  EXPECT_EQ(tracker.StragglerFraction(0), 0.0);
  EXPECT_EQ(tracker.latency_samples(0), 300u);
}

TEST(LatencyTailTest, MergedWindowSpansRotation) {
  LoadTrackerParams params = FastRefreshParams();
  params.latency_window = 100;
  LoadTracker tracker(1, params);
  // Exactly one rotation: the estimates must still see the first
  // window's samples via the previous window (not forget them at the
  // rotation edge).
  for (int i = 0; i < 100; ++i) {
    tracker.RecordServiceTime(0, i % 10 == 0 ? 100.0 : 5.0);
  }
  tracker.RecordServiceTime(0, 5.0);  // First sample of the new window.
  EXPECT_GT(tracker.TailExcessMs(0), 10.0);
  EXPECT_GT(tracker.StragglerFraction(0), 0.0);
}

TEST(LatencyTailTest, QuantileQueryTracksDistribution) {
  LoadTracker tracker(1, FastRefreshParams());
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    tracker.RecordServiceTime(0, 2.0 + 8.0 * rng.NextDouble());  // U[2,10].
  }
  EXPECT_NEAR(tracker.LatencyQuantileMs(0, 0.5), 6.0, 0.5);
  EXPECT_NEAR(tracker.LatencyQuantileMs(0, 0.99), 9.9, 0.5);
  EXPECT_NEAR(tracker.LatencyVarianceMs2(0), 64.0 / 12.0, 1.0);
}

TEST(LatencyTailTest, SummariesRefreshOnCadenceNotEverySample) {
  LoadTrackerParams params;  // Default refresh cadence (32).
  LoadTracker tracker(1, params);
  tracker.RecordServiceTime(0, 5.0);  // First sample always refreshes.
  EXPECT_NEAR(tracker.LatencyMeanMs(0), 5.0, 1e-9);
  // A burst of slow samples between refresh points is invisible...
  for (int i = 0; i < 20; ++i) tracker.RecordServiceTime(0, 50.0);
  EXPECT_NEAR(tracker.LatencyMeanMs(0), 5.0, 1e-9);
  // ...until the cadence boundary folds it in.
  for (int i = 0; i < 20; ++i) tracker.RecordServiceTime(0, 50.0);
  EXPECT_GT(tracker.LatencyMeanMs(0), 20.0);
}

TEST(LatencyTailTest, NegativeServiceTimeClampsToZero) {
  LoadTracker tracker(1, FastRefreshParams());
  tracker.RecordServiceTime(0, -3.0);
  EXPECT_EQ(tracker.latency_samples(0), 1u);
  EXPECT_NEAR(tracker.LatencyMeanMs(0), 0.0, 1e-6);
}

TEST(LatencyTailTest, CopyPreservesTailState) {
  // SelectMovement snapshots the tracker by value; the copy must carry
  // the tail summaries with it.
  LoadTracker tracker(2, FastRefreshParams());
  for (int i = 0; i < 500; ++i) {
    tracker.RecordServiceTime(1, i % 25 == 0 ? 80.0 : 4.0);
  }
  const LoadTracker copy = tracker;
  EXPECT_EQ(copy.latency_samples(1), 500u);
  EXPECT_NEAR(copy.TailExcessMs(1), tracker.TailExcessMs(1), 1e-12);
  EXPECT_NEAR(copy.ClusterStragglerFraction(),
              tracker.ClusterStragglerFraction(), 1e-12);
}

}  // namespace
}  // namespace ecstore
