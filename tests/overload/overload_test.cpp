// Overload control (DESIGN.md §14): breaker state machine, CoDel
// admission gate, brownout ladder, the breaker-aware planning filter,
// and the SimECStore deadline/shed integration.
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/state.h"
#include "core/control_plane.h"
#include "core/local_store.h"
#include "core/sim_store.h"
#include "overload/overload.h"
#include "placement/cost_model.h"

namespace ecstore {
namespace {

OverloadParams BreakerParams() {
  OverloadParams p;
  p.breakers = true;
  p.breaker_p99_ms = 50;
  p.breaker_open_ms = 250;
  p.breaker_half_open_probes = 3;
  p.breaker_min_samples = 64;
  return p;
}

// ---------------------------------------------------------------------------
// Circuit breakers.

TEST(CircuitBreakerTest, ClosedOpenHalfOpenClosedCycle) {
  CircuitBreakerSet set(4, BreakerParams());
  EXPECT_FALSE(set.AnyNotClosed());
  EXPECT_FALSE(set.ShouldAvoid(0));

  // Bad p99 with enough samples trips the breaker.
  set.Evaluate(0, /*p99_ms=*/200, /*samples=*/100, /*now_ms=*/0);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kOpen);
  EXPECT_TRUE(set.AnyNotClosed());
  EXPECT_TRUE(set.ShouldAvoid(0));
  EXPECT_FALSE(set.AllowProbe(0));
  EXPECT_EQ(set.opens(), 1u);
  // Other sites are untouched.
  EXPECT_FALSE(set.ShouldAvoid(1));

  // Before the cool-off the breaker stays open.
  set.Evaluate(0, 200, 100, 100);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kOpen);

  // After breaker_open_ms it goes half-open and grants a bounded number
  // of probes — no thundering herd on recovery.
  set.Evaluate(0, 200, 100, 250);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kHalfOpen);
  EXPECT_FALSE(set.ShouldAvoid(0));  // probes still available
  EXPECT_TRUE(set.AllowProbe(0));
  EXPECT_TRUE(set.AllowProbe(0));
  EXPECT_TRUE(set.AllowProbe(0));
  EXPECT_FALSE(set.AllowProbe(0));  // budget exhausted
  EXPECT_TRUE(set.ShouldAvoid(0));
  EXPECT_EQ(set.half_open_probes(), 3u);

  // The first healthy window closes it.
  set.Evaluate(0, 10, 200, 300);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kClosed);
  EXPECT_FALSE(set.AnyNotClosed());
  EXPECT_TRUE(set.AllowProbe(0));  // closed sites always pass
  EXPECT_EQ(set.opens(), 1u);
}

TEST(CircuitBreakerTest, MinSamplesPreventsColdTrip) {
  CircuitBreakerSet set(2, BreakerParams());
  // A cold site with a few unlucky fetches must not flap the breaker.
  set.Evaluate(0, /*p99_ms=*/1000, /*samples=*/10, /*now_ms=*/0);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kClosed);
  EXPECT_FALSE(set.AnyNotClosed());
}

TEST(CircuitBreakerTest, HalfOpenRelapseReopensAfterFullPeriod) {
  CircuitBreakerSet set(2, BreakerParams());
  set.Evaluate(0, 200, 100, 0);
  set.Evaluate(0, 200, 100, 250);  // half-open
  ASSERT_EQ(set.StateOf(0), CircuitBreakerSet::State::kHalfOpen);
  // Still bad shortly after: the histogram remembers the bad episode, so
  // the verdict waits a full half-open period before re-opening.
  set.Evaluate(0, 200, 100, 300);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kHalfOpen);
  set.Evaluate(0, 200, 100, 520);
  EXPECT_EQ(set.StateOf(0), CircuitBreakerSet::State::kOpen);
  EXPECT_EQ(set.opens(), 2u);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(AdmissionTest, ConcurrencyCapShedsExcess) {
  OverloadParams p;
  p.admission = true;
  p.admission_max_in_flight = 2;
  AdmissionController adm(p);
  EXPECT_TRUE(adm.TryAdmit(0));
  EXPECT_TRUE(adm.TryAdmit(0));
  EXPECT_FALSE(adm.TryAdmit(0));  // past the cap: shed
  EXPECT_EQ(adm.requests_shed(), 1u);
  EXPECT_EQ(adm.in_flight(), 2);
  adm.Release();
  EXPECT_TRUE(adm.TryAdmit(0));  // token returned
  adm.Release();
  adm.Release();
}

TEST(AdmissionTest, StandingQueueHalvesTheCap) {
  OverloadParams p;
  p.admission = true;
  p.admission_max_in_flight = 4;
  p.codel_target_ms = 5;
  p.codel_interval_ms = 100;
  AdmissionController adm(p);
  // A whole CoDel window whose *minimum* sojourn exceeds target: a
  // standing queue, not a burst.
  adm.RecordSojourn(20, 0);
  adm.RecordSojourn(15, 60);
  adm.RecordSojourn(18, 120);  // closes the window: min 15 > 5
  EXPECT_TRUE(adm.overloaded());
  EXPECT_GE(adm.Pressure(), 1.0);
  EXPECT_TRUE(adm.TryAdmit(130));
  EXPECT_TRUE(adm.TryAdmit(130));
  EXPECT_FALSE(adm.TryAdmit(130));  // halved cap: 2 of 4
}

TEST(AdmissionTest, BriefBurstIsTolerated) {
  OverloadParams p;
  p.admission = true;
  p.admission_max_in_flight = 4;
  p.codel_target_ms = 5;
  p.codel_interval_ms = 100;
  AdmissionController adm(p);
  // Deep sojourns mixed with one fast pickup: the window minimum stays
  // under target, so the queue is draining — no cut.
  adm.RecordSojourn(50, 0);
  adm.RecordSojourn(1, 60);
  adm.RecordSojourn(40, 120);  // closes the window: min 1 <= 5
  EXPECT_FALSE(adm.overloaded());
  EXPECT_TRUE(adm.TryAdmit(130));
  EXPECT_TRUE(adm.TryAdmit(130));
  EXPECT_TRUE(adm.TryAdmit(130));
  EXPECT_TRUE(adm.TryAdmit(130));
}

// ---------------------------------------------------------------------------
// Brownout ladder.

TEST(BrownoutTest, EscalatesOneLevelPerDwellAndRestoresInReverse) {
  OverloadParams p;
  p.brownout = true;
  p.brownout_high_pressure = 0.7;
  p.brownout_low_pressure = 0.3;
  p.brownout_dwell_ms = 150;
  BrownoutController ladder(p);
  EXPECT_EQ(ladder.level(), 0);

  ladder.Update(0.9, 0);
  EXPECT_EQ(ladder.level(), 1);
  ladder.Update(0.9, 100);  // inside the dwell: holds
  EXPECT_EQ(ladder.level(), 1);
  ladder.Update(0.9, 200);
  EXPECT_EQ(ladder.level(), 2);
  ladder.Update(0.9, 400);
  ladder.Update(0.9, 600);
  EXPECT_EQ(ladder.level(), 4);
  ladder.Update(0.9, 800);  // capped at kMaxLevel
  EXPECT_EQ(ladder.level(), 4);

  // Middling pressure holds the level (hysteresis band).
  ladder.Update(0.5, 1000);
  EXPECT_EQ(ladder.level(), 4);

  // Low pressure steps down one level per dwell — reverse order.
  ladder.Update(0.1, 1200);
  EXPECT_EQ(ladder.level(), 3);
  ladder.Update(0.1, 1250);  // inside the dwell: holds
  EXPECT_EQ(ladder.level(), 3);
  ladder.Update(0.1, 1400);
  ladder.Update(0.1, 1600);
  ladder.Update(0.1, 1800);
  EXPECT_EQ(ladder.level(), 0);
  ladder.Update(0.1, 2000);
  EXPECT_EQ(ladder.level(), 0);
}

// ---------------------------------------------------------------------------
// OverloadControl aggregate.

TEST(OverloadControlTest, CountersAggregateAcrossControllers) {
  OverloadParams p;
  p.admission = true;
  p.admission_max_in_flight = 1;
  p.breakers = true;
  p.breaker_min_samples = 1;
  p.brownout = true;
  OverloadControl ctl(4, p);
  ASSERT_NE(ctl.admission(), nullptr);
  ASSERT_NE(ctl.breakers(), nullptr);
  ASSERT_NE(ctl.brownout(), nullptr);
  EXPECT_TRUE(ctl.gate_enabled());

  EXPECT_TRUE(ctl.admission()->TryAdmit(0));
  EXPECT_FALSE(ctl.admission()->TryAdmit(0));
  ctl.EvaluateSite(2, /*p99_ms=*/500, /*samples=*/10, /*now_ms=*/0);
  ctl.deadline_exceeded.fetch_add(3);
  ctl.expired_jobs_cancelled.fetch_add(2);

  const OverloadCounters c = ctl.Counters(/*extra_expired=*/5);
  EXPECT_EQ(c.requests_shed, 1u);
  EXPECT_EQ(c.deadline_exceeded, 3u);
  EXPECT_EQ(c.breaker_opens, 1u);
  EXPECT_EQ(c.expired_jobs_cancelled, 7u);  // own counter + queue's
  EXPECT_EQ(c.brownout_level, 0u);
}

TEST(OverloadControlTest, BrownoutOnlyConfigStillHasPressureSource) {
  OverloadParams p;
  p.brownout = true;
  OverloadControl ctl(2, p);
  // Brownout derives its pressure from the admission controller, so the
  // controller exists — but the gate does not bite.
  ASSERT_NE(ctl.admission(), nullptr);
  EXPECT_FALSE(ctl.gate_enabled());
  EXPECT_EQ(ctl.breakers(), nullptr);
}

// ---------------------------------------------------------------------------
// Breaker-aware planning filter.

struct PlaneFixture {
  explicit PlaneFixture(std::size_t sites = 8)
      : config(ECStoreConfig::ForTechnique(Technique::kEcCMLb)),
        state(sites),
        rng(42) {
    config.num_sites = sites;
  }

  ControlPlane& plane() {
    if (!plane_) {
      plane_ = std::make_unique<ControlPlane>(
          &config, &state, &rng,
          [this](ControlPlane::Deferred w) { deferred.push_back(std::move(w)); });
    }
    return *plane_;
  }

  ECStoreConfig config;
  ClusterState state;
  Rng rng;
  std::deque<ControlPlane::Deferred> deferred;
  std::unique_ptr<ControlPlane> plane_;
};

TEST(PlanningFilterTest, OpenBreakerSiteIsAvoidedWhenAlternativesExist) {
  PlaneFixture f;
  OverloadParams p = BreakerParams();
  p.breaker_min_samples = 1;
  OverloadControl ctl(8, p);
  f.plane().set_overload_control(&ctl);

  // Block 0: 4 candidate sites, only 2 needed — site 0 is avoidable.
  f.state.AddBlock(0, 100 * 1024, 50 * 1024, 2, 2,
                   std::vector<SiteId>{0, 1, 2, 3});
  ctl.EvaluateSite(0, /*p99_ms=*/500, /*samples=*/100, /*now_ms=*/0);
  ASSERT_TRUE(ctl.breakers()->ShouldAvoid(0));

  const std::vector<BlockId> blocks = {0};
  const DemandResult dr = BuildDemands(f.state, blocks, 0);
  const PlanDecision d = f.plane().SelectAccessPlan(blocks, dr.demands, 0);
  EXPECT_EQ(d.source, PlanSource::kGreedy);
  ASSERT_EQ(d.plan.reads.size(), 2u);
  for (const ChunkRead& r : d.plan.reads) {
    EXPECT_NE(r.site, 0u) << "planned a read on the tripped site";
  }
  // A breaker episode must not poison the plan cache: repeated requests
  // under a tripped breaker never queue a background ILP solve (which
  // would install the transient, filtered plan for posterity).
  (void)f.plane().SelectAccessPlan(blocks, dr.demands, 0);
  (void)f.plane().SelectAccessPlan(blocks, dr.demands, 0);
  EXPECT_TRUE(f.deferred.empty());
}

TEST(PlanningFilterTest, TrippedSiteEveryBlockNeedsIsStillRead) {
  PlaneFixture f;
  OverloadParams p = BreakerParams();
  p.breaker_min_samples = 1;
  OverloadControl ctl(8, p);
  f.plane().set_overload_control(&ctl);

  // Block 0: exactly k candidates, one on the tripped site. Soft
  // failure, not hard: the filter never makes a plan infeasible.
  f.state.AddBlock(0, 100 * 1024, 50 * 1024, 2, 0,
                   std::vector<SiteId>{0, 1});
  ctl.EvaluateSite(0, 500, 100, 0);

  const std::vector<BlockId> blocks = {0};
  const DemandResult dr = BuildDemands(f.state, blocks, 0);
  const PlanDecision d = f.plane().SelectAccessPlan(blocks, dr.demands, 0);
  ASSERT_EQ(d.plan.reads.size(), 2u);
  bool uses_site0 = false;
  for (const ChunkRead& r : d.plan.reads) uses_site0 |= (r.site == 0);
  EXPECT_TRUE(uses_site0);
}

TEST(PlanningFilterTest, ClosedBreakersLeaveThePlanPathUntouched) {
  PlaneFixture f;
  OverloadParams p = BreakerParams();
  OverloadControl ctl(8, p);
  f.plane().set_overload_control(&ctl);
  f.state.AddBlock(0, 100 * 1024, 50 * 1024, 2, 2,
                   std::vector<SiteId>{0, 1, 2, 3});
  const std::vector<BlockId> blocks = {0};
  const DemandResult dr = BuildDemands(f.state, blocks, 0);
  // All breakers closed: the normal cache-miss -> greedy + queued ILP
  // path runs exactly as without the overload subsystem (two misses
  // queue the background solve, as in the plan-cache tests).
  const PlanDecision d = f.plane().SelectAccessPlan(blocks, dr.demands, 0);
  EXPECT_EQ(d.plan.reads.size(), 2u);
  (void)f.plane().SelectAccessPlan(blocks, dr.demands, 0);
  EXPECT_FALSE(f.deferred.empty());
}

// ---------------------------------------------------------------------------
// SimECStore integration.

TEST(SimOverloadTest, DisabledConfigConstructsNoSubsystem) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  ASSERT_FALSE(config.overload.Enabled());
  SimECStore store(config);
  EXPECT_EQ(store.overload(), nullptr);
  const ControlPlaneUsage u = store.Usage();
  EXPECT_EQ(u.requests_shed, 0u);
  EXPECT_EQ(u.deadline_exceeded, 0u);
  EXPECT_EQ(u.brownout_level, 0u);
}

TEST(SimOverloadTest, AdmissionGateShedsAndReleasesTokens) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  config.overload.admission = true;
  config.overload.admission_max_in_flight = 1;
  SimECStore store(config);
  store.LoadBlocks(0, 8, 100 * 1024);
  store.Start();

  int ok = 0, shed = 0;
  SimTime shed_total = 0;
  auto record = [&](const RequestBreakdown& r) {
    if (r.shed) {
      ++shed;
      shed_total += r.total;
      EXPECT_FALSE(r.ok);
    } else if (r.ok) {
      ++ok;
    }
  };
  // Three synchronous submissions: the first takes the only token; the
  // other two shed at the gate before any control-plane work.
  store.Get({0}, record);
  store.Get({1}, record);
  store.Get({2}, record);
  store.queue().RunUntil(FromSeconds(5));
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 2);
  // Sheds fail fast: the modeled penalty, orders of magnitude under a
  // served request.
  EXPECT_LE(shed_total, 2 * FromMillis(config.overload.shed_penalty_ms));
  EXPECT_EQ(store.Usage().requests_shed, 2u);

  // The completed request returned its token: a new request is admitted.
  store.Get({3}, record);
  store.queue().RunUntil(FromSeconds(10));
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 2);
}

TEST(SimOverloadTest, DeadlineCompletesTheRequestAtItsBudget) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  config.overload.deadline_ms = 0.001;  // 1 us: expires before metadata
  SimECStore store(config);
  store.LoadBlocks(0, 4, 100 * 1024);
  store.Start();

  bool done = false;
  RequestBreakdown out;
  store.Get({0}, [&](const RequestBreakdown& r) {
    done = true;
    out = r;
  });
  store.queue().RunUntil(FromSeconds(5));
  ASSERT_TRUE(done);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.deadline_hit);
  EXPECT_FALSE(out.shed);
  EXPECT_EQ(out.total, FromMillis(config.overload.deadline_ms));
  EXPECT_EQ(store.Usage().deadline_exceeded, 1u);
}

TEST(SimOverloadTest, GenerousDeadlineLeavesRequestsUntouched) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  config.overload.deadline_ms = 60'000;
  SimECStore store(config);
  store.LoadBlocks(0, 4, 100 * 1024);
  store.Start();

  int ok = 0;
  for (BlockId b = 0; b < 4; ++b) {
    store.Get({b}, [&](const RequestBreakdown& r) { ok += r.ok ? 1 : 0; });
  }
  store.queue().RunUntil(FromSeconds(30));
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(store.Usage().deadline_exceeded, 0u);
}

TEST(SimOverloadTest, BrownoutEngagesUnderFloodAndRecoversAfter) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  config.overload.admission = true;
  config.overload.admission_max_in_flight = 2;
  config.overload.brownout = true;
  SimECStore store(config);
  store.LoadBlocks(0, 32, 100 * 1024);
  store.Start();

  // Eight closed-loop clients against a 2-token gate: admitted
  // utilization pins at 1.0, so the ladder climbs at every stats tick.
  const SimTime load_end = FromSeconds(8);
  Rng pick(7);
  std::function<void(std::uint32_t)> issue = [&](std::uint32_t client) {
    if (store.queue().Now() >= load_end) return;
    const BlockId b = pick.NextBounded(32);
    store.Get({b}, [&, client](const RequestBreakdown& r) {
      if (r.shed) {
        // Shed completions re-issue after a short think so the event
        // count stays bounded while pressure stays pinned.
        store.queue().ScheduleAfter(FromMillis(1),
                                    [&, client] { issue(client); });
      } else {
        issue(client);
      }
    });
  };
  for (std::uint32_t c = 0; c < 8; ++c) issue(c);

  int level_during = 0;
  store.queue().ScheduleAt(load_end - FromSeconds(1), [&] {
    level_during = store.overload()->brownout_level();
  });
  // Run well past the flood: pressure collapses and the ladder steps
  // back down one dwell at a time.
  store.queue().RunUntil(load_end + FromSeconds(20));
  EXPECT_GE(level_during, 1);
  EXPECT_EQ(store.overload()->brownout_level(), 0);
  EXPECT_GT(store.Usage().requests_shed, 0u);
}

// ---------------------------------------------------------------------------
// LocalECStore integration.

TEST(LocalOverloadTest, ConcurrentMultiGetsShedPastTheGate) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  config.overload.admission = true;
  config.overload.admission_max_in_flight = 1;
  config.data_plane.base_latency_ms = 2.0;  // holds the token visibly long
  LocalECStore store(config);
  std::vector<std::uint8_t> data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((i * 131) & 0xFF);
  }
  for (BlockId b = 0; b < 4; ++b) store.Put(b, data);

  constexpr int kThreads = 4;
  constexpr int kGetsPerThread = 3;
  std::atomic<int> ok{0}, shed{0}, errors{0}, start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kGetsPerThread; ++i) {
        try {
          const std::vector<BlockId> ids = {static_cast<BlockId>((t + i) % 4)};
          auto out = store.MultiGet(ids);
          if (out.size() == 1 && out[0] == data) {
            ok.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        } catch (const RequestShedError&) {
          shed.fetch_add(1);
        } catch (const std::exception&) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kThreads * kGetsPerThread);
  // One token, four barrier-started threads, 2 ms service: overlap is
  // certain, so the gate must have refused someone — and the refusals
  // must all be accounted for.
  EXPECT_GE(shed.load(), 1);
  EXPECT_GE(ok.load(), kGetsPerThread);  // progress was never blocked
  EXPECT_EQ(store.Usage().requests_shed, static_cast<std::uint64_t>(shed.load()));
}

TEST(LocalOverloadTest, GenerousDeadlinePassesAndCountersStayZero) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 4;
  config.overload.deadline_ms = 60'000;
  LocalECStore store(config);
  std::vector<std::uint8_t> data(32 * 1024, 0x5A);
  store.Put(1, data);
  const std::vector<BlockId> ids = {1};
  const auto out = store.MultiGet(ids);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], data);
  const ControlPlaneUsage u = store.Usage();
  EXPECT_EQ(u.deadline_exceeded, 0u);
  EXPECT_EQ(u.requests_shed, 0u);
  EXPECT_EQ(u.expired_jobs_cancelled, 0u);
}

}  // namespace
}  // namespace ecstore
