// The executable form of DESIGN.md's "cannot diverge" claim: both
// embodiments drive the one shared ControlPlane, so the same seeded
// request trace must produce identical access-plan decisions, identical
// plan-cache hit/miss sequences, and identical mover choices whether the
// data plane is the discrete-event simulator or real bytes on in-process
// nodes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/local_store.h"
#include "core/sim_store.h"

namespace ecstore {
namespace {

/// One observed plan decision, flattened for comparison.
struct LoggedDecision {
  std::vector<BlockId> blocks;  // canonical (sorted, deduped)
  PlanSource source = PlanSource::kRandom;
  std::vector<std::tuple<BlockId, ChunkIndex, SiteId>> reads;

  bool operator==(const LoggedDecision&) const = default;
};

ControlPlane::PlanObserver MakeLogger(std::vector<LoggedDecision>* log) {
  return [log](std::span<const BlockId> blocks, const PlanDecision& decision) {
    LoggedDecision entry;
    entry.blocks = PlanCache::CanonicalKey(blocks);
    entry.source = decision.source;
    for (const ChunkRead& read : decision.plan.reads) {
      entry.reads.emplace_back(read.block, read.chunk, read.site);
    }
    log->push_back(std::move(entry));
  };
}

class EmbodimentParityTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBlocks = 16;
  static constexpr std::uint64_t kBlockBytes = 4096;
  static constexpr std::uint64_t kRngSeed = 0x5EED5EEDULL;

  ECStoreConfig Config() const {
    ECStoreConfig c = ECStoreConfig::ForTechnique(Technique::kEcCM);
    c.num_sites = 8;
    c.seed = 42;
    return c;
  }

  /// `chunks` distinct sites per block, from a dedicated placement stream
  /// (partial Fisher–Yates over all sites).
  std::vector<std::vector<SiteId>> MakePlacements(const ECStoreConfig& config) {
    Rng place_rng(0xFACEULL);
    std::vector<std::vector<SiteId>> placements;
    const std::uint32_t chunks = config.ChunksPerBlock();
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      std::vector<SiteId> sites;
      for (SiteId j = 0; j < static_cast<SiteId>(config.num_sites); ++j) {
        sites.push_back(j);
      }
      for (std::uint32_t i = 0; i < chunks; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(place_rng.NextBounded(sites.size() - i));
        std::swap(sites[i], sites[j]);
      }
      sites.resize(chunks);
      placements.push_back(std::move(sites));
    }
    return placements;
  }

  /// The same seeded multiget trace for both embodiments: distinct block
  /// sets drawn from a small universe so sets recur (exercising the
  /// miss -> register, miss -> background-ILP, hit progression). Kept
  /// under 64 requests so LocalECStore's load refresh never fires — the
  /// simulator, run without Start(), has no stats ticks either, so both
  /// control planes see identical o_j throughout.
  std::vector<std::vector<BlockId>> MakeTrace() {
    Rng trace_rng(0x7ACEULL);
    std::vector<std::vector<BlockId>> trace;
    for (int i = 0; i < 48; ++i) {
      const std::size_t size = 1 + trace_rng.NextBounded(3);
      std::vector<BlockId> blocks;
      while (blocks.size() < size) {
        const BlockId b = trace_rng.NextBounded(kBlocks / 2);  // hot half
        if (std::find(blocks.begin(), blocks.end(), b) == blocks.end()) {
          blocks.push_back(b);
        }
      }
      trace.push_back(std::move(blocks));
    }
    return trace;
  }

  std::vector<std::uint8_t> BlockData(BlockId id) const {
    Rng data_rng(0xDA7AULL + id);
    std::vector<std::uint8_t> data(kBlockBytes);
    for (auto& b : data) b = static_cast<std::uint8_t>(data_rng.NextBounded(256));
    return data;
  }
};

TEST_F(EmbodimentParityTest, SameTraceSameDecisions) {
  const ECStoreConfig config = Config();
  const auto placements = MakePlacements(config);
  const auto trace = MakeTrace();

  // --- Simulator embodiment. Start() is deliberately not called: the
  // periodic services would consume simulated time, but planning parity
  // needs both control planes fed the exact same inputs.
  SimECStore sim(config);
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    sim.LoadBlockAt(b, kBlockBytes, placements[b]);
  }
  sim.rng() = Rng(kRngSeed);  // Align draws after differing load paths.
  std::vector<LoggedDecision> sim_log;
  sim.control_plane().set_plan_observer(MakeLogger(&sim_log));

  std::vector<bool> sim_hits;
  for (const auto& blocks : trace) {
    sim.Get(blocks, [&](const RequestBreakdown& r) {
      ASSERT_TRUE(r.ok);
      sim_hits.push_back(r.plan_cache_hit);
    });
    // Run the request AND its deferred background solve to completion
    // before the next request, mirroring the synchronous embodiment.
    sim.queue().RunAll();
  }

  // --- Real-bytes embodiment, identical placements and trace.
  LocalECStore local(config);
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    local.Put(b, BlockData(b), placements[b]);
  }
  local.rng() = Rng(kRngSeed);
  std::vector<LoggedDecision> local_log;
  local.control_plane().set_plan_observer(MakeLogger(&local_log));

  std::vector<bool> local_hits;
  for (const auto& blocks : trace) {
    const auto result = local.MultiGet(blocks);
    // While at it: the bytes are right.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      ASSERT_EQ(result[i], BlockData(blocks[i]));
    }
    local_hits.push_back(local_log.back().source == PlanSource::kCacheHit);
  }

  // --- Identical decision sequences: same sets, same cache-hit/greedy
  // classification, same chunk-for-chunk access plans.
  ASSERT_EQ(sim_log.size(), trace.size());
  ASSERT_EQ(local_log.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(sim_log[i].blocks, local_log[i].blocks) << "request " << i;
    EXPECT_EQ(sim_log[i].source, local_log[i].source) << "request " << i;
    EXPECT_EQ(sim_log[i].reads, local_log[i].reads) << "request " << i;
  }
  EXPECT_EQ(sim_hits, local_hits);

  // The trace recurs, so the shared path must actually exercise all three
  // stages somewhere in the run.
  EXPECT_GT(sim.plan_cache().hits(), 0u);
  EXPECT_GT(sim.Usage().ilp_solves, 0u);

  // --- Identical plan-cache hit/miss counters and ILP accounting.
  EXPECT_EQ(sim.plan_cache().hits(), local.plan_cache().hits());
  EXPECT_EQ(sim.plan_cache().misses(), local.plan_cache().misses());
  EXPECT_EQ(sim.Usage().ilp_solves, local.Usage().ilp_solves);

  // --- Identical mover choice from the identical statistics (Algorithm 1
  // with the same co-access window, load estimates, and RNG position).
  const auto sim_move = sim.control_plane().SelectMovement(100.0);
  const auto local_move = local.control_plane().SelectMovement(100.0);
  ASSERT_EQ(sim_move.has_value(), local_move.has_value());
  if (sim_move) {
    EXPECT_EQ(sim_move->block, local_move->block);
    EXPECT_EQ(sim_move->source, local_move->source);
    EXPECT_EQ(sim_move->destination, local_move->destination);
  }
}

}  // namespace
}  // namespace ecstore
