// Integration tests across the whole stack: workload generator ->
// closed-loop driver -> SimECStore -> control-plane services, asserting
// the paper's qualitative claims at small scale, plus cross-embodiment
// consistency between the simulated and the real-bytes stores.
#include <gtest/gtest.h>

#include <map>

#include "core/local_store.h"
#include "core/sim_store.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace ecstore {
namespace {

struct MiniResult {
  double mean_ms = 0;
  double imbalance = 0;
  std::uint64_t requests = 0;
  std::uint64_t moves = 0;
};

MiniResult RunMini(Technique t, std::uint64_t seed) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(t);
  config.num_sites = 16;
  config.seed = seed;
  config.mover_chunks_per_sec = 8;
  SimECStore store(config);

  YcsbEWorkload::Params wp;
  wp.num_blocks = 2000;
  wp.block_bytes = 100 * 1024;
  YcsbEWorkload workload(wp);
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);

  ClosedLoopDriver::Params dp;
  dp.clients = 12;
  dp.warmup = 10 * kSecond;
  dp.measure = 20 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();

  MiniResult r;
  r.mean_ms = driver.metrics().total.Mean() / kMillisecond;
  r.imbalance = store.ImbalanceLambda(driver.measure_start_bytes());
  r.requests = driver.metrics().requests;
  r.moves = store.Usage().moves_executed;
  return r;
}

TEST(EndToEndTest, AllTechniquesComplete) {
  for (Technique t :
       {Technique::kReplication, Technique::kEc, Technique::kEcLb,
        Technique::kEcC, Technique::kEcCM, Technique::kEcCMLb}) {
    const MiniResult r = RunMini(t, 3);
    EXPECT_GT(r.requests, 500u) << TechniqueName(t);
    EXPECT_GT(r.mean_ms, 1.0) << TechniqueName(t);
    EXPECT_LT(r.mean_ms, 500.0) << TechniqueName(t);
  }
}

TEST(EndToEndTest, CostModelNotWorseThanRandomAccess) {
  // The paper's core claim, at reduced scale: EC+C does not lose to EC.
  double ec = 0, ecc = 0;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    ec += RunMini(Technique::kEc, seed).mean_ms;
    ecc += RunMini(Technique::kEcC, seed).mean_ms;
  }
  EXPECT_LT(ecc, ec * 1.02);  // Allow 2% noise; expect an actual win.
}

TEST(EndToEndTest, MoverActuallyMovesUnderSkew) {
  const MiniResult r = RunMini(Technique::kEcCM, 5);
  EXPECT_GT(r.moves, 5u);
}

TEST(EndToEndTest, ReplicationAndEcReadDifferentVolumes) {
  // Per retrieved block, replication reads block_bytes while RS(2,2)
  // reads 2 x block_bytes/2 = block_bytes as well -- but late binding
  // reads 1.5x. Verify the Fig. 4d volume relations end to end.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcLb);
  config.num_sites = 16;
  config.seed = 9;
  SimECStore lb(config);
  SimECStore ec(ECStoreConfig::ForTechnique(
      Technique::kEc, [&] {
        ECStoreConfig c = config;
        return c;
      }()));
  for (SimECStore* s : {&lb, &ec}) {
    s->LoadBlocks(0, 100, 100 * 1024);
  }
  for (int i = 0; i < 50; ++i) {
    lb.Get({static_cast<BlockId>(i % 100)}, [](const RequestBreakdown&) {});
    ec.Get({static_cast<BlockId>(i % 100)}, [](const RequestBreakdown&) {});
  }
  lb.queue().RunUntil(30 * kSecond);
  ec.queue().RunUntil(30 * kSecond);
  std::uint64_t lb_bytes = 0, ec_bytes = 0;
  for (auto b : lb.SiteBytesRead()) lb_bytes += b;
  for (auto b : ec.SiteBytesRead()) ec_bytes += b;
  EXPECT_EQ(ec_bytes, 50u * 100 * 1024);
  EXPECT_EQ(lb_bytes, 50u * 150 * 1024);  // +50% chunk requests.
}

TEST(EndToEndTest, WikipediaWorkloadDrivesSimStore) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCM);
  config.num_sites = 16;
  config.seed = 11;
  SimECStore store(config);

  WikipediaWorkload::Params wp;
  wp.num_pages = 300;
  wp.size_min_bytes = 32 * 1024;
  wp.size_max_bytes = 1024 * 1024;
  WikipediaWorkload workload(wp);
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);

  ClosedLoopDriver::Params dp;
  dp.clients = 8;
  dp.warmup = 5 * kSecond;
  dp.measure = 10 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();
  EXPECT_GT(driver.metrics().requests, 100u);
  EXPECT_EQ(driver.metrics().failures, 0u);
}

// Cross-embodiment consistency: the same planner code runs in both
// stores, so a plan computed against LocalECStore state satisfies the
// same constraints the simulator enforces.
TEST(EndToEndTest, EmbodimentsShareSemantics) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 8;
  config.seed = 21;
  LocalECStore local(config);
  Rng rng(1);
  for (BlockId id = 0; id < 10; ++id) {
    std::vector<std::uint8_t> data(512);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    local.Put(id, data);
  }
  const std::vector<BlockId> q = {1, 2, 3};
  const DemandResult dr = BuildDemands(local.state(), q, 0);
  const auto plan = IlpPlan(dr.demands, CostParams::Homogeneous(8, 5.0, 1e-5));
  ASSERT_TRUE(plan.has_value());
  // Every planned read hits a chunk the node layer actually stores.
  for (const ChunkRead& read : plan->reads) {
    EXPECT_TRUE(local.node(read.site).HasChunk(read.block, read.chunk));
  }
}

TEST(EndToEndTest, FailuresDuringRunAreSurvived) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 16;
  config.seed = 31;
  SimECStore store(config);
  store.LoadBlocks(0, 500, 100 * 1024);

  YcsbEWorkload::Params wp;
  wp.num_blocks = 500;
  YcsbEWorkload workload(wp);

  ClosedLoopDriver::Params dp;
  dp.clients = 6;
  dp.warmup = 5 * kSecond;
  dp.measure = 20 * kSecond;

  // Fail two sites mid-measurement.
  store.queue().ScheduleAt(12 * kSecond, [&] { store.FailSite(0); });
  store.queue().ScheduleAt(15 * kSecond, [&] { store.FailSite(1); });

  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();
  EXPECT_GT(driver.metrics().requests, 200u);
  EXPECT_EQ(driver.metrics().failures, 0u);  // r = 2 covers both failures.
}

}  // namespace
}  // namespace ecstore
