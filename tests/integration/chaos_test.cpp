// Chaos integration test (DESIGN.md §9, the robustness acceptance test):
// the real-bytes embodiment under concurrent MultiGet/Put load while a
// deterministic fault schedule crashes a site, flaps another, and injects
// transient fetch errors — all on top of silently corrupted chunks.
//
// Invariants checked:
//   - zero data loss: every read, throughout the run and afterwards, is
//     bit-exact (corrupt chunks are caught by their checksums and decoded
//     around — bad bytes never reach a client);
//   - the failure detector marks the silently crashed site dead from
//     missed heartbeats alone (no manual FailSite anywhere);
//   - the repair service reconstructs the dead site's chunks and, with
//     the scrubber, the cluster converges back to full k+r redundancy
//     with every chunk checksum-valid.
//
// Fault victims are chosen so no block ever exceeds r = 2 erasures at any
// instant, whatever the thread timing: corruption is restricted to blocks
// with no chunk on the crash or flap victims, and the flap window does not
// overlap the crash's undetected window. The invariants therefore hold
// deterministically even under heavy sanitizer slowdowns.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/codec_spec.h"
#include "core/local_store.h"
#include "fault/injector.h"

namespace ecstore {
namespace {

constexpr SiteId kCrashVictim = 3;
constexpr SiteId kFlapVictim = 5;
constexpr SiteId kCorruptVictim = 0;
constexpr SiteId kErrorVictim = 1;

/// Mixed-family chaos block size: divisible by k = 2 and k = 6 alike.
constexpr std::size_t kMixedBlockBytes = 6 * 1024;

std::vector<std::uint8_t> MakeBlock(std::size_t n, std::uint64_t tag) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>((tag * 197) ^ (i * 13) ^ (i >> 7));
  }
  return data;
}

TEST(ChaosTest, ZeroDataLossUnderCrashFlapErrorsAndCorruption) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 8;
  config.k = 2;
  config.r = 2;
  config.late_binding_delta = 1;
  config.seed = 2024;
  // Fast robustness loop so detection + grace + repair + scrub all play
  // out inside a short run.
  config.detector_suspect_after = FromMillis(120);
  config.detector_dead_after = FromMillis(250);
  config.repair_wait = FromMillis(150);
  config.maintenance_tick_ms = 15.0;
  config.scrub_every_ticks = 4;
  config.data_plane.workers_per_site = 2;
  config.data_plane.fetch_deadline_ms = 40.0;
  config.data_plane.retry.max_retries = 3;
  config.data_plane.retry.backoff_base_ms = 2.0;
  config.data_plane.retry.max_backoff_ms = 20.0;
  LocalECStore store(config);

  // Load phase: 120 blocks of 4 KB with known contents.
  constexpr BlockId kPreloaded = 120;
  constexpr std::size_t kBlockBytes = 4096;
  for (BlockId id = 0; id < kPreloaded; ++id) {
    store.Put(id, MakeBlock(kBlockBytes, id));
  }

  // Silent corruption, seeded before the storm: flip chunks at
  // kCorruptVictim for every preloaded block that has no chunk on the
  // crash or flap victims, so each block keeps at most r = 2 erasures at
  // any instant of the run. Single-threaded here; readers then hammer the
  // corrupted blocks throughout and the background scrubber repairs them
  // mid-chaos.
  std::vector<std::pair<BlockId, ChunkIndex>> corrupted;
  for (BlockId id = 0; id < kPreloaded; ++id) {
    bool on_victims = false;
    ChunkIndex at_corrupt_site = 0;
    bool has_corrupt_site = false;
    for (const ChunkLocation& loc : store.state().GetBlock(id).locations) {
      if (loc.site == kCrashVictim || loc.site == kFlapVictim) {
        on_victims = true;
      }
      if (loc.site == kCorruptVictim) {
        at_corrupt_site = loc.chunk;
        has_corrupt_site = true;
      }
    }
    if (on_victims || !has_corrupt_site) continue;
    if (store.node(kCorruptVictim).CorruptChunk(id, at_corrupt_site)) {
      corrupted.push_back({id, at_corrupt_site});
    }
  }
  ASSERT_GE(corrupted.size(), 2u) << "placement never used the corrupt site";

  // The node-level guarantee, deterministically: a corrupt chunk is never
  // handed out — the checksum turns it into an erasure — and the block
  // still decodes bit-exact around it.
  EXPECT_EQ(store.node(kCorruptVictim)
                .GetChunk(corrupted[0].first, corrupted[0].second),
            nullptr);
  EXPECT_GE(store.Usage().checksum_failures, 1u);
  for (const auto& [id, chunk] : corrupted) {
    EXPECT_EQ(store.Get(id), MakeBlock(kBlockBytes, id));
  }

  store.StartMaintenance();

  // Fault schedule (wall-clock offsets). The crash is silent — only the
  // detector may mark the site dead. The flap outlasts the dead threshold
  // so the detector fires, but heals inside the repair grace window;
  // heartbeats then revive the belief.
  std::vector<TimedAction> schedule;
  FaultActions actions = store.MakeFaultActions();
  schedule.push_back({100, [&] { actions.crash(kCrashVictim); }});
  schedule.push_back({150, [&] { actions.set_fetch_error(kErrorVictim, 0.25); }});
  schedule.push_back({600, [&] { actions.crash(kFlapVictim); }});
  schedule.push_back({900, [&] { actions.heal(kFlapVictim); }});
  schedule.push_back({1100, [&] { actions.set_fetch_error(kErrorVictim, 0.0); }});
  schedule.push_back({1400, [&] { actions.heal(kCrashVictim); }});
  InjectionThread injector(std::move(schedule));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::atomic<std::uint64_t> read_failures{0};

  // Writer: new blocks throughout the run, recorded for the final verify.
  std::mutex written_mu;
  std::vector<BlockId> written;
  std::thread writer([&] {
    BlockId next = 10'000;
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        store.Put(next, MakeBlock(kBlockBytes, next));
        std::lock_guard<std::mutex> lock(written_mu);
        written.push_back(next);
      } catch (const std::exception&) {
        // Not enough believed-available sites mid-outage: skip this id.
      }
      ++next;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Readers: hammer the preloaded blocks, verifying every byte. No gtest
  // assertions off the main thread — failures funnel into a counter.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t) * 977;
      while (!stop.load(std::memory_order_relaxed)) {
        const BlockId a = (i * 31 + 7) % kPreloaded;
        const BlockId b = (i * 17 + 3) % kPreloaded;
        const std::vector<BlockId> ids = {a, b};
        try {
          const auto out = store.MultiGet(ids);
          if (out[0] != MakeBlock(kBlockBytes, a) ||
              out[1] != MakeBlock(kBlockBytes, b)) {
            ++read_failures;  // Wrong bytes reached a client.
          }
        } catch (const std::exception&) {
          ++read_failures;  // A block became unreadable.
        }
        ++reads_done;
        ++i;
      }
    });
  }

  injector.Start();

  // Let the whole arc play out: detection, grace, repair, scrub, flap
  // heal, revival. Generous so sanitizer slowdowns don't truncate it.
  std::this_thread::sleep_for(std::chrono::milliseconds(2100));

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  writer.join();
  injector.Stop(/*run_remaining=*/true);

  // A few more maintenance ticks so heartbeats from the healed sites
  // revive their belief, then take over single-threadedly.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  store.StopMaintenance();

  EXPECT_EQ(read_failures.load(), 0u) << "a client saw wrong or lost data";
  EXPECT_GT(reads_done.load(), 0u);

  const ControlPlaneUsage mid_usage = store.Usage();
  EXPECT_GE(mid_usage.sites_marked_dead, 1u)
      << "the detector never marked the silent crash dead";
  EXPECT_GE(mid_usage.chunks_repaired, 1u) << "repair never fired";
  EXPECT_GE(mid_usage.retried_fetches + mid_usage.degraded_reads, 1u);

  // Deterministic convergence: scrub + repair until every block is back
  // at full k+r redundancy with every chunk checksum-valid and every
  // hosting site available.
  std::vector<BlockId> all_blocks;
  for (BlockId id = 0; id < kPreloaded; ++id) all_blocks.push_back(id);
  {
    std::lock_guard<std::mutex> lock(written_mu);
    for (BlockId id : written) all_blocks.push_back(id);
  }
  const auto fully_redundant = [&](BlockId id) {
    const BlockInfo& info = store.state().GetBlock(id);
    if (info.locations.size() != config.ChunksPerBlock()) return false;
    for (const ChunkLocation& loc : info.locations) {
      if (!store.state().IsSiteAvailable(loc.site)) return false;
      if (!store.node(loc.site).HasValidChunk(id, loc.chunk)) return false;
    }
    return true;
  };
  bool converged = false;
  for (int round = 0; round < 64 && !converged; ++round) {
    store.ScrubOnce();
    for (SiteId j = 0; j < config.num_sites; ++j) {
      if (!store.state().IsSiteAvailable(j)) store.RepairSite(j);
    }
    converged = true;
    for (BlockId id : all_blocks) converged = converged && fully_redundant(id);
  }
  EXPECT_TRUE(converged) << "cluster never returned to full redundancy";

  // Final sweep: every block — preloaded and written mid-chaos — reads
  // back bit-exact.
  for (BlockId id : all_blocks) {
    EXPECT_EQ(store.Get(id), MakeBlock(kBlockBytes, id)) << "block " << id;
  }

  const ControlPlaneUsage usage = store.Usage();
  EXPECT_GE(usage.chunks_scrubbed, static_cast<std::uint64_t>(corrupted.size()))
      << "the scrubber never rewrote the corrupt chunks";
}

// Cache-enabled chaos (DESIGN.md §12): the same storm — silent crash,
// flap, transient fetch errors, pre-seeded corruption — with the decoded-
// block cache, λ prefetch, and hot-block replica promotion all live, and
// promotion/demotion rewrites racing the readers via mid-run movement
// rounds. The coherence invariant under test: a cached decode must never
// outlive its block version, so zero stale bytes reach any client even
// while scrub rewrites corrupt chunks and the promoter rewrites layouts
// underneath the cache.
TEST(ChaosTest, CacheStaysCoherentUnderCrashFlapErrorsAndCorruption) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 8;
  config.k = 2;
  config.r = 2;
  config.late_binding_delta = 1;
  config.seed = 2025;
  config.detector_suspect_after = FromMillis(120);
  config.detector_dead_after = FromMillis(250);
  config.repair_wait = FromMillis(150);
  config.maintenance_tick_ms = 15.0;
  config.scrub_every_ticks = 4;
  config.data_plane.workers_per_site = 2;
  config.data_plane.fetch_deadline_ms = 40.0;
  config.data_plane.retry.max_retries = 3;
  config.data_plane.retry.backoff_base_ms = 2.0;
  config.data_plane.retry.max_backoff_ms = 20.0;
  // The latency tier, all on: a cache big enough to hold a good slice of
  // the working set, prefetch chasing co-access partners, and a replica
  // budget that lets the promoter rewrite layouts mid-storm.
  config.cache_capacity_bytes = 2 << 20;
  config.cache_prefetch = true;
  config.replica_budget_bytes = 256 << 10;
  config.promote_min_frequency = 0.005;
  config.demote_frequency = 0.001;
  LocalECStore store(config);

  constexpr BlockId kPreloaded = 120;
  constexpr std::size_t kBlockBytes = 4096;
  for (BlockId id = 0; id < kPreloaded; ++id) {
    store.Put(id, MakeBlock(kBlockBytes, id));
  }

  // Same corruption discipline as the base scenario: only blocks clear of
  // the crash/flap victims, so erasures never stack past r = 2.
  std::vector<std::pair<BlockId, ChunkIndex>> corrupted;
  for (BlockId id = 0; id < kPreloaded; ++id) {
    bool on_victims = false;
    ChunkIndex at_corrupt_site = 0;
    bool has_corrupt_site = false;
    for (const ChunkLocation& loc : store.state().GetBlock(id).locations) {
      if (loc.site == kCrashVictim || loc.site == kFlapVictim) {
        on_victims = true;
      }
      if (loc.site == kCorruptVictim) {
        at_corrupt_site = loc.chunk;
        has_corrupt_site = true;
      }
    }
    if (on_victims || !has_corrupt_site) continue;
    if (store.node(kCorruptVictim).CorruptChunk(id, at_corrupt_site)) {
      corrupted.push_back({id, at_corrupt_site});
    }
  }
  ASSERT_GE(corrupted.size(), 2u) << "placement never used the corrupt site";

  // Warm the cache on the corrupted blocks BEFORE the storm: the scrubber
  // will rewrite those chunks mid-run, and the version bump must fence
  // every one of these cached decodes.
  for (const auto& [id, chunk] : corrupted) {
    EXPECT_EQ(store.Get(id), MakeBlock(kBlockBytes, id));
  }

  store.StartMaintenance();

  std::vector<TimedAction> schedule;
  FaultActions actions = store.MakeFaultActions();
  schedule.push_back({100, [&] { actions.crash(kCrashVictim); }});
  schedule.push_back({150, [&] { actions.set_fetch_error(kErrorVictim, 0.25); }});
  // Promotion/demotion rewrites race the readers at three points in the
  // storm: mid-errors, mid-flap, and after the crash heals.
  schedule.push_back({400, [&] { store.RunMovementRound(); }});
  schedule.push_back({600, [&] { actions.crash(kFlapVictim); }});
  schedule.push_back({800, [&] { store.RunMovementRound(); }});
  schedule.push_back({900, [&] { actions.heal(kFlapVictim); }});
  schedule.push_back({1100, [&] { actions.set_fetch_error(kErrorVictim, 0.0); }});
  schedule.push_back({1400, [&] { actions.heal(kCrashVictim); }});
  schedule.push_back({1600, [&] { store.RunMovementRound(); }});
  InjectionThread injector(std::move(schedule));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::atomic<std::uint64_t> read_failures{0};

  std::mutex written_mu;
  std::vector<BlockId> written;
  std::thread writer([&] {
    BlockId next = 30'000;
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        store.Put(next, MakeBlock(kBlockBytes, next));
        std::lock_guard<std::mutex> lock(written_mu);
        written.push_back(next);
      } catch (const std::exception&) {
        // Not enough believed-available sites mid-outage: skip this id.
      }
      ++next;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Readers skew toward a hot head (ids 0..15) so the promoter has clear
  // promotion candidates, while still sweeping the whole preload so the
  // corrupted blocks stay under read pressure through their scrub.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t) * 977;
      while (!stop.load(std::memory_order_relaxed)) {
        const BlockId a = (i * 31 + 7) % 16;
        const BlockId b = (i * 17 + 3) % kPreloaded;
        const std::vector<BlockId> ids = {a, b};
        try {
          const auto out = store.MultiGet(ids);
          if (out[0] != MakeBlock(kBlockBytes, a) ||
              out[1] != MakeBlock(kBlockBytes, b)) {
            ++read_failures;  // Stale or wrong bytes reached a client.
          }
        } catch (const std::exception&) {
          ++read_failures;  // A block became unreadable.
        }
        ++reads_done;
        ++i;
      }
    });
  }

  injector.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2100));

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  writer.join();
  injector.Stop(/*run_remaining=*/true);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  store.StopMaintenance();

  EXPECT_EQ(read_failures.load(), 0u) << "a client saw stale or lost data";
  EXPECT_GT(reads_done.load(), 0u);

  const ControlPlaneUsage mid_usage = store.Usage();
  EXPECT_GE(mid_usage.sites_marked_dead, 1u)
      << "the detector never marked the silent crash dead";
  EXPECT_GE(mid_usage.chunks_repaired, 1u) << "repair never fired";
  // The tier actually exercised: the hot head hit the cache, and the
  // promoter rewrote at least one hot block to full replicas.
  EXPECT_GE(mid_usage.cache_hits, 1u) << "the cache never served a read";
  EXPECT_GE(mid_usage.blocks_promoted, 1u) << "the promoter never fired";
  EXPECT_LE(mid_usage.replica_extra_bytes, config.replica_budget_bytes);

  // Convergence, per-block codec aware: promoted blocks are full replicas
  // now, so "full redundancy" is SpecTotalChunks of whatever layout each
  // block currently has.
  std::vector<BlockId> all_blocks;
  for (BlockId id = 0; id < kPreloaded; ++id) all_blocks.push_back(id);
  {
    std::lock_guard<std::mutex> lock(written_mu);
    for (BlockId id : written) all_blocks.push_back(id);
  }
  const auto fully_redundant = [&](BlockId id) {
    const BlockInfo& info = store.state().GetBlock(id);
    if (info.locations.size() != SpecTotalChunks(info.codec)) return false;
    for (const ChunkLocation& loc : info.locations) {
      if (!store.state().IsSiteAvailable(loc.site)) return false;
      if (!store.node(loc.site).HasValidChunk(id, loc.chunk)) return false;
    }
    return true;
  };
  bool converged = false;
  for (int round = 0; round < 64 && !converged; ++round) {
    store.ScrubOnce();
    for (SiteId j = 0; j < config.num_sites; ++j) {
      if (!store.state().IsSiteAvailable(j)) store.RepairSite(j);
    }
    converged = true;
    for (BlockId id : all_blocks) converged = converged && fully_redundant(id);
  }
  EXPECT_TRUE(converged) << "cluster never returned to full redundancy";

  // Final sweep — through the still-enabled cache — must be bit-exact for
  // every block, whatever mix of scrub rewrites, repairs, promotions, and
  // demotions it went through.
  for (BlockId id : all_blocks) {
    EXPECT_EQ(store.Get(id), MakeBlock(kBlockBytes, id)) << "block " << id;
  }
}

// Mixed codec families under chaos (DESIGN.md §11): one cluster carrying
// default-RS, Azure-LRC, piggyback-RS, and replicated blocks side by
// side while a silent crash, transient fetch errors, and pre-seeded
// corruption play out. Every family's degraded reads, plan-driven scrub,
// and repair must hold the zero-data-loss invariant simultaneously.
// Victims are chosen so no block exceeds 2 erasures at any instant —
// within every family's fault tolerance (LRC(6,2,2)'s floor is 2).
TEST(ChaosTest, MixedCodecFamiliesSurviveCrashErrorsAndCorruption) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 12;  // LRC(6,2,2) needs 10 distinct sites.
  config.k = 2;
  config.r = 2;
  config.late_binding_delta = 1;
  config.seed = 4242;
  config.detector_suspect_after = FromMillis(120);
  config.detector_dead_after = FromMillis(250);
  config.repair_wait = FromMillis(150);
  config.maintenance_tick_ms = 15.0;
  config.scrub_every_ticks = 4;
  config.data_plane.workers_per_site = 2;
  config.data_plane.fetch_deadline_ms = 40.0;
  config.data_plane.retry.max_retries = 3;
  config.data_plane.retry.backoff_base_ms = 2.0;
  config.data_plane.retry.max_backoff_ms = 20.0;
  LocalECStore store(config);

  // Block id -> codec family, round-robin over the four families (empty
  // means the config default, rs(2,2)).
  const auto spec_for = [](BlockId id) -> const char* {
    switch (id % 4) {
      case 0: return "";
      case 1: return "lrc(6,2,2)";
      case 2: return "pb(6,3)";
      default: return "rep(2)";
    }
  };
  const auto put_block = [&](BlockId id) {
    const char* name = spec_for(id);
    if (*name == '\0') {
      store.Put(id, MakeBlock(kMixedBlockBytes, id));
    } else {
      store.Put(id, MakeBlock(kMixedBlockBytes, id), ParseCodecSpec(name));
    }
  };

  constexpr BlockId kPreloaded = 80;
  for (BlockId id = 0; id < kPreloaded; ++id) put_block(id);

  // Seed corruption on blocks that keep their distance from the crash
  // victim, so corrupt + crashed never stack past 2 erasures anywhere.
  std::vector<std::pair<BlockId, ChunkIndex>> corrupted;
  for (BlockId id = 0; id < kPreloaded; ++id) {
    bool on_crash_victim = false;
    ChunkIndex at_corrupt_site = 0;
    bool has_corrupt_site = false;
    for (const ChunkLocation& loc : store.state().GetBlock(id).locations) {
      if (loc.site == kCrashVictim) on_crash_victim = true;
      if (loc.site == kCorruptVictim) {
        at_corrupt_site = loc.chunk;
        has_corrupt_site = true;
      }
    }
    if (on_crash_victim || !has_corrupt_site) continue;
    if (store.node(kCorruptVictim).CorruptChunk(id, at_corrupt_site)) {
      corrupted.push_back({id, at_corrupt_site});
    }
  }
  ASSERT_GE(corrupted.size(), 2u) << "placement never used the corrupt site";
  for (const auto& [id, chunk] : corrupted) {
    EXPECT_EQ(store.Get(id), MakeBlock(kMixedBlockBytes, id));
  }

  store.StartMaintenance();

  std::vector<TimedAction> schedule;
  FaultActions actions = store.MakeFaultActions();
  schedule.push_back({100, [&] { actions.crash(kCrashVictim); }});
  schedule.push_back({150, [&] { actions.set_fetch_error(kErrorVictim, 0.25); }});
  schedule.push_back({900, [&] { actions.set_fetch_error(kErrorVictim, 0.0); }});
  schedule.push_back({1200, [&] { actions.heal(kCrashVictim); }});
  InjectionThread injector(std::move(schedule));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::atomic<std::uint64_t> read_failures{0};

  std::mutex written_mu;
  std::vector<BlockId> written;
  std::thread writer([&] {
    BlockId next = 20'000;
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        put_block(next);
        std::lock_guard<std::mutex> lock(written_mu);
        written.push_back(next);
      } catch (const std::exception&) {
        // Not enough believed-available sites mid-outage: skip this id.
      }
      ++next;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t) * 977;
      while (!stop.load(std::memory_order_relaxed)) {
        // Each MultiGet mixes families: consecutive ids span the cycle.
        const BlockId a = (i * 31 + 7) % kPreloaded;
        const BlockId b = (a + 1) % kPreloaded;
        try {
          const auto out = store.MultiGet(std::vector<BlockId>{a, b});
          if (out[0] != MakeBlock(kMixedBlockBytes, a) ||
              out[1] != MakeBlock(kMixedBlockBytes, b)) {
            ++read_failures;
          }
        } catch (const std::exception&) {
          ++read_failures;
        }
        ++reads_done;
        ++i;
      }
    });
  }

  injector.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1800));

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  writer.join();
  injector.Stop(/*run_remaining=*/true);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  store.StopMaintenance();

  EXPECT_EQ(read_failures.load(), 0u) << "a client saw wrong or lost data";
  EXPECT_GT(reads_done.load(), 0u);
  EXPECT_GE(store.Usage().sites_marked_dead, 1u)
      << "the detector never marked the silent crash dead";

  // Converge every family back to its own full redundancy (the per-block
  // codec decides how many chunks "full" means).
  std::vector<BlockId> all_blocks;
  for (BlockId id = 0; id < kPreloaded; ++id) all_blocks.push_back(id);
  {
    std::lock_guard<std::mutex> lock(written_mu);
    for (BlockId id : written) all_blocks.push_back(id);
  }
  const auto fully_redundant = [&](BlockId id) {
    const BlockInfo& info = store.state().GetBlock(id);
    if (info.locations.size() != SpecTotalChunks(info.codec)) return false;
    for (const ChunkLocation& loc : info.locations) {
      if (!store.state().IsSiteAvailable(loc.site)) return false;
      if (!store.node(loc.site).HasValidChunk(id, loc.chunk)) return false;
    }
    return true;
  };
  bool converged = false;
  for (int round = 0; round < 64 && !converged; ++round) {
    store.ScrubOnce();
    for (SiteId j = 0; j < config.num_sites; ++j) {
      if (!store.state().IsSiteAvailable(j)) store.RepairSite(j);
    }
    converged = true;
    for (BlockId id : all_blocks) converged = converged && fully_redundant(id);
  }
  EXPECT_TRUE(converged) << "cluster never returned to full redundancy";

  for (BlockId id : all_blocks) {
    EXPECT_EQ(store.Get(id), MakeBlock(kMixedBlockBytes, id)) << "block " << id;
  }
}

// Overload storm (DESIGN.md §14): offered load well past the admission
// cap — 8 closed-loop readers against a 4-token gate — while 2% of
// fetches straggle 20x, one site degrades to ~100x service time, and
// another site flaps (crash + heal). The overload subsystem, all four
// features on, must keep the storm *stable*:
//   - excess requests are shed fast-fail (RequestShedError), never
//     counted as data loss;
//   - the degraded site's breaker trips open, grants half-open probes
//     after the cool-off, and closes again once the site heals;
//   - the brownout ladder engages under pressure and steps back to 0
//     after the storm drains;
//   - every admitted read, throughout and afterwards, is bit-exact.
TEST(ChaosTest, OverloadStormShedsBreaksAndRecovers) {
  constexpr SiteId kSlowVictim = 2;

  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 8;
  config.k = 2;
  config.r = 2;
  config.late_binding_delta = 1;
  config.seed = 7777;
  config.detector_suspect_after = FromMillis(120);
  config.detector_dead_after = FromMillis(250);
  config.repair_wait = FromMillis(150);
  config.maintenance_tick_ms = 15.0;
  config.scrub_every_ticks = 4;
  config.data_plane.workers_per_site = 2;
  // A real (injected) service time so queues, sojourns, and per-site
  // latency distributions all carry signal, plus the acceptance storm's
  // straggler regime: 2% of fetches take 20x.
  config.data_plane.base_latency_ms = 2.0;
  config.data_plane.straggler_probability = 0.02;
  config.data_plane.straggler_factor = 20.0;
  // Generous fetch deadline: the degraded site serves ~200 ms fetches,
  // which late binding cancels as stragglers rather than timing out.
  config.data_plane.fetch_deadline_ms = 400.0;
  config.data_plane.retry.max_retries = 3;
  config.data_plane.retry.backoff_base_ms = 2.0;
  config.data_plane.retry.max_backoff_ms = 20.0;
  // Small rotation window so the slow site's histogram forgets the bad
  // regime from probe traffic alone once the site heals — the breaker
  // can then close within the test's drain phase.
  config.latency_window = 64;
  // The subsystem under test, everything on.
  config.overload.deadline_ms = 5000.0;  // Generous: sanitizer headroom.
  config.overload.admission = true;
  config.overload.admission_max_in_flight = 4;
  config.overload.breakers = true;
  // Above the 2%/20x straggler p99 (~40 ms) so only the degraded site
  // trips; well under its ~200 ms service time.
  config.overload.breaker_p99_ms = 80.0;
  config.overload.breaker_open_ms = 120.0;
  config.overload.breaker_half_open_probes = 64;
  config.overload.breaker_min_samples = 16;
  config.overload.brownout = true;
  config.overload.brownout_dwell_ms = 60.0;
  LocalECStore store(config);

  constexpr BlockId kPreloaded = 120;
  constexpr std::size_t kBlockBytes = 4096;
  for (BlockId id = 0; id < kPreloaded; ++id) {
    store.Put(id, MakeBlock(kBlockBytes, id));
  }

  // Warm every site's latency histogram past breaker_min_samples with
  // quiet traffic, so the degraded site trips from its p99 — not from a
  // cold-start sample count race.
  for (BlockId id = 0; id < kPreloaded; ++id) {
    ASSERT_EQ(store.Get(id), MakeBlock(kBlockBytes, id));
  }

  store.StartMaintenance();

  // The storm schedule: one site degrades to ~101x service (trips its
  // breaker), another flaps dead and heals, and the degradation lifts
  // with enough storm left for half-open probes to start flowing.
  std::vector<TimedAction> schedule;
  FaultActions actions = store.MakeFaultActions();
  schedule.push_back({100, [&] { actions.degrade(kSlowVictim, 101.0); }});
  schedule.push_back({600, [&] { actions.crash(kFlapVictim); }});
  schedule.push_back({900, [&] { actions.heal(kFlapVictim); }});
  schedule.push_back({1300, [&] { actions.degrade(kSlowVictim, 1.0); }});
  InjectionThread injector(std::move(schedule));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::atomic<std::uint64_t> reads_shed{0};
  std::atomic<std::uint64_t> deadline_hits{0};
  std::atomic<std::uint64_t> read_failures{0};

  std::mutex written_mu;
  std::vector<BlockId> written;
  std::thread writer([&] {
    BlockId next = 40'000;
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        store.Put(next, MakeBlock(kBlockBytes, next));
        std::lock_guard<std::mutex> lock(written_mu);
        written.push_back(next);
      } catch (const std::exception&) {
        // Shed by admission or short of sites mid-outage: skip this id.
      }
      ++next;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // 8 closed-loop readers against a 4-token admission gate: offered load
  // ~2x the admitted concurrency, so sheds are structural, not timing
  // luck. Sheds and deadline hits are deliberate overload outcomes and
  // are counted apart from data loss. No gtest assertions off the main
  // thread — failures funnel into a counter.
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t) * 977;
      while (!stop.load(std::memory_order_relaxed)) {
        const BlockId a = (i * 31 + 7) % kPreloaded;
        const BlockId b = (i * 17 + 3) % kPreloaded;
        const std::vector<BlockId> ids = {a, b};
        try {
          const auto out = store.MultiGet(ids);
          if (out[0] != MakeBlock(kBlockBytes, a) ||
              out[1] != MakeBlock(kBlockBytes, b)) {
            ++read_failures;  // Wrong bytes reached a client.
          }
        } catch (const RequestShedError&) {
          ++reads_shed;  // Deliberate fast-fail; not data loss.
        } catch (const DeadlineExceededError&) {
          ++deadline_hits;  // Budget ran out; not data loss.
        } catch (const std::exception&) {
          ++read_failures;  // A block became unreadable.
        }
        ++reads_done;
        ++i;
      }
    });
  }

  injector.Start();

  // Poll the shed ladder while the storm runs: it must engage at some
  // point during the flood (pressure pins at 1.0 while all four tokens
  // stay taken).
  std::uint64_t max_level_during = 0;
  for (int slice = 0; slice < 21; ++slice) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    max_level_during =
        std::max(max_level_during, store.Usage().brownout_level);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  writer.join();
  injector.Stop(/*run_remaining=*/true);

  // Drain phase, single reader: pressure collapses, the ladder steps
  // back down, and half-open probes feed the healed slow site enough
  // quiet samples to rotate the bad regime out of its histogram and
  // close the breaker. Condition-driven with a generous cap so
  // sanitizer slowdowns don't truncate the recovery arc.
  const CircuitBreakerSet* breakers = store.overload()->breakers();
  const auto recovered = [&] {
    return breakers->StateOf(kSlowVictim) ==
               CircuitBreakerSet::State::kClosed &&
           store.Usage().brownout_level == 0;
  };
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::uint64_t drain_i = 0;
  while (!recovered() && std::chrono::steady_clock::now() < drain_deadline) {
    const BlockId a = (drain_i * 31 + 7) % kPreloaded;
    const BlockId b = (drain_i * 17 + 3) % kPreloaded;
    const std::vector<BlockId> ids = {a, b};
    try {
      const auto out = store.MultiGet(ids);
      if (out[0] != MakeBlock(kBlockBytes, a) ||
          out[1] != MakeBlock(kBlockBytes, b)) {
        ++read_failures;
      }
    } catch (const RequestShedError&) {
      ++reads_shed;
    } catch (const std::exception&) {
      ++read_failures;
    }
    ++drain_i;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  store.StopMaintenance();

  EXPECT_EQ(read_failures.load(), 0u) << "a client saw wrong or lost data";
  EXPECT_GT(reads_done.load(), 0u);
  EXPECT_GT(reads_shed.load(), 0u) << "the gate never shed a reader";

  // The full breaker arc: tripped open on the degraded site, granted
  // half-open probes after the cool-off, and closed again post-heal.
  const ControlPlaneUsage usage = store.Usage();
  EXPECT_GE(usage.breaker_opens, 1u) << "the slow site never tripped";
  EXPECT_GE(usage.breaker_half_open_probes, 1u)
      << "no probe ever flowed in half-open";
  EXPECT_EQ(breakers->StateOf(kSlowVictim),
            CircuitBreakerSet::State::kClosed)
      << "the breaker never closed after the site healed";

  // The shed ladder: engaged during the flood, fully restored after.
  EXPECT_GE(max_level_during, 1u) << "brownout never engaged";
  EXPECT_EQ(usage.brownout_level, 0u) << "brownout never fully recovered";
  EXPECT_GE(usage.requests_shed, reads_shed.load());

  // Deterministic convergence + final bit-exact sweep, as in every chaos
  // scenario: overload control must never have traded durability for
  // stability.
  std::vector<BlockId> all_blocks;
  for (BlockId id = 0; id < kPreloaded; ++id) all_blocks.push_back(id);
  {
    std::lock_guard<std::mutex> lock(written_mu);
    for (BlockId id : written) all_blocks.push_back(id);
  }
  const auto fully_redundant = [&](BlockId id) {
    const BlockInfo& info = store.state().GetBlock(id);
    if (info.locations.size() != config.ChunksPerBlock()) return false;
    for (const ChunkLocation& loc : info.locations) {
      if (!store.state().IsSiteAvailable(loc.site)) return false;
      if (!store.node(loc.site).HasValidChunk(id, loc.chunk)) return false;
    }
    return true;
  };
  bool converged = false;
  for (int round = 0; round < 64 && !converged; ++round) {
    store.ScrubOnce();
    for (SiteId j = 0; j < config.num_sites; ++j) {
      if (!store.state().IsSiteAvailable(j)) store.RepairSite(j);
    }
    converged = true;
    for (BlockId id : all_blocks) converged = converged && fully_redundant(id);
  }
  EXPECT_TRUE(converged) << "cluster never returned to full redundancy";

  for (BlockId id : all_blocks) {
    EXPECT_EQ(store.Get(id), MakeBlock(kBlockBytes, id)) << "block " << id;
  }
}

}  // namespace
}  // namespace ecstore
