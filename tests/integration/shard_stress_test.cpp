// Sharded control-plane stress (DESIGN.md §10): reader threads MultiGet
// while writers Put fresh blocks, a chaos thread fails/recovers sites,
// and a mover thread runs movement rounds — all against a store with
// shards > 1 and a live background ILP executor pool. The sanitizer CI
// stages run this binary under both ASan and TSan (run_sanitizers.sh);
// any lock-order violation between shard mutexes, the load tracker, the
// catalog stripes, and the executor pool trips TSan here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/local_store.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> PatternBlock(BlockId id, std::size_t n) {
  std::vector<std::uint8_t> block(n);
  for (std::size_t i = 0; i < n; ++i) {
    block[i] = static_cast<std::uint8_t>((id * 197 + i * 13) & 0xFF);
  }
  return block;
}

TEST(ShardStressTest, MultiGetPutFailureAndMovementRace) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 12;
  config.seed = 2024;
  config.control_plane_shards = 8;
  config.ilp_executor_threads = 2;
  LocalECStore store(config);

  // Seed corpus: ids [0, kSeeded) always present; writers append above.
  constexpr BlockId kSeeded = 32;
  constexpr std::size_t kBlockBytes = 1536;
  for (BlockId id = 0; id < kSeeded; ++id) {
    store.Put(id, PatternBlock(id, kBlockBytes));
  }

  std::atomic<bool> stop{false};
  std::atomic<BlockId> next_id{kSeeded};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> read_errors{0};

  // Readers: random batches over the stable seeded range so the expected
  // bytes are always known, racing everything else.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(5000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<BlockId> ids;
        const std::size_t batch = 1 + rng.NextBounded(4);
        for (std::size_t b = 0; b < batch; ++b) {
          ids.push_back(rng.NextBounded(kSeeded));
        }
        try {
          const auto got = store.MultiGet(ids);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            if (got[i] != PatternBlock(ids[i], kBlockBytes)) {
              mismatches.fetch_add(1);
            }
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          // Transient unreadability is allowed mid-failure; corruption
          // is not (checked above).
          read_errors.fetch_add(1);
        }
      }
    });
  }

  // Writer: keeps Put racing the read path and the mover.
  std::thread writer([&] {
    Rng rng(6001);
    while (!stop.load(std::memory_order_relaxed)) {
      const BlockId id = next_id.fetch_add(1);
      try {
        store.Put(id, PatternBlock(id, 512 + rng.NextBounded(1024)));
      } catch (const std::exception&) {
        // Put may fail while a site is down (not enough available
        // sites); acceptable under chaos.
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Chaos: fail one site, let traffic run degraded, recover it. One site
  // out of 12 leaves k=2 reachable for every RS(2,2) block.
  std::thread chaos([&] {
    Rng rng(7002);
    while (!stop.load(std::memory_order_relaxed)) {
      const SiteId site = rng.NextBounded(config.num_sites);
      store.FailSite(site);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      store.RecoverSite(site);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Mover: movement rounds re-place chunks and invalidate plans.
  std::thread mover([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store.RunMovementRound();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& r : readers) r.join();
  writer.join();
  chaos.join();
  mover.join();

  EXPECT_EQ(mismatches.load(), 0) << "read returned corrupt bytes";
  EXPECT_GT(reads.load(), 0u);

  // Quiesce: drain deferred ILP work, then verify the whole seeded
  // corpus decodes to the written bytes with all sites healthy.
  store.DrainBackgroundWork();
  for (BlockId id = 0; id < kSeeded; ++id) {
    EXPECT_EQ(store.Get(id), PatternBlock(id, kBlockBytes)) << "block " << id;
  }

  // The sharded bookkeeping stayed consistent: every shard's cache obeys
  // its per-shard capacity and the aggregate counters are coherent.
  const auto totals = store.control_plane().CacheTotals();
  EXPECT_GE(totals.hits + totals.misses, reads.load());
}

}  // namespace
}  // namespace ecstore
