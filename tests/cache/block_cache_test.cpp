// Latency tier tests (DESIGN.md §12): the λ-weighted decoded-block cache
// (admission/eviction determinism, version-checked coherence, prefetch
// dedup), the replica promoter's budget accounting, and the LocalECStore
// integration — cached MultiGet, invalidation on Put/move/scrub rewrite,
// prefetch fills, and promote/demote surviving a replica-site failure
// with zero stale reads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/block_cache.h"
#include "cache/promoter.h"
#include "core/local_store.h"

namespace ecstore {
namespace {

std::shared_ptr<const std::vector<std::uint8_t>> Bytes(std::size_t n,
                                                       std::uint8_t fill) {
  return std::make_shared<const std::vector<std::uint8_t>>(n, fill);
}

std::vector<std::uint8_t> MakeBlock(std::size_t n, std::uint64_t tag) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>((tag * 131) ^ (i * 7) ^ (i >> 6));
  }
  return data;
}

// --- BlockCache unit tests -------------------------------------------

TEST(BlockCacheTest, ZeroCapacityRejectsEverything) {
  BlockCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.Insert(1, Bytes(8, 1), 8, 1, 0.5));
  EXPECT_FALSE(cache.Lookup(1, 1, nullptr));
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(BlockCacheTest, LambdaAdmissionRejectsColderThanResidents) {
  BlockCache cache(100);
  ASSERT_TRUE(cache.Insert(1, Bytes(50, 1), 50, 1, 0.5));
  ASSERT_TRUE(cache.Insert(2, Bytes(50, 2), 50, 1, 0.4));
  // A colder candidate must NOT flush hotter residents — and must not
  // partially evict anything either.
  EXPECT_FALSE(cache.Insert(3, Bytes(50, 3), 50, 1, 0.1));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.Stats().admission_rejects, 1u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  // A hotter candidate evicts the coldest resident deterministically.
  EXPECT_TRUE(cache.Insert(4, Bytes(50, 4), 50, 1, 0.9));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.resident_bytes(), 100u);
}

TEST(BlockCacheTest, EqualWeightEvictionIsLruDeterministic) {
  BlockCache cache(100);
  ASSERT_TRUE(cache.Insert(1, Bytes(50, 1), 50, 1, 0.5));
  ASSERT_TRUE(cache.Insert(2, Bytes(50, 2), 50, 1, 0.5));
  // Touch block 1 so block 2 becomes least recently used.
  EXPECT_TRUE(cache.Lookup(1, 1, nullptr));
  ASSERT_TRUE(cache.Insert(3, Bytes(50, 3), 50, 1, 0.5));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(BlockCacheTest, OversizedInsertRejected) {
  BlockCache cache(100);
  EXPECT_FALSE(cache.Insert(1, Bytes(200, 1), 200, 1, 9.0));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(BlockCacheTest, VersionMismatchInvalidatesOnLookup) {
  BlockCache cache(1024);
  ASSERT_TRUE(cache.Insert(7, Bytes(16, 7), 16, /*version=*/5, 0.5));
  std::shared_ptr<const std::vector<std::uint8_t>> data;
  EXPECT_TRUE(cache.Lookup(7, 5, &data));
  ASSERT_NE(data, nullptr);
  EXPECT_EQ((*data)[0], 7u);
  // The catalog moved on (Put/move/repair rewrite): the stale entry
  // self-invalidates and reports a miss.
  EXPECT_FALSE(cache.Lookup(7, 6, &data));
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_EQ(cache.Stats().invalidations, 1u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(BlockCacheTest, ReinsertReplacesWithFreshVersion) {
  BlockCache cache(1024);
  ASSERT_TRUE(cache.Insert(7, Bytes(16, 1), 16, 1, 0.5));
  ASSERT_TRUE(cache.Insert(7, Bytes(32, 2), 32, 2, 0.5));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 32u);
  std::shared_ptr<const std::vector<std::uint8_t>> data;
  EXPECT_TRUE(cache.Lookup(7, 2, &data));
  EXPECT_EQ((*data)[0], 2u);
}

TEST(BlockCacheTest, ExplicitInvalidate) {
  BlockCache cache(1024);
  ASSERT_TRUE(cache.Insert(1, Bytes(16, 1), 16, 1, 0.5));
  EXPECT_TRUE(cache.Invalidate(1));
  EXPECT_FALSE(cache.Invalidate(1));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST(BlockCacheTest, PrefetchDedupAndAccounting) {
  BlockCache cache(1024);
  // Claim: only the first Begin wins while the fill is in flight.
  EXPECT_TRUE(cache.BeginPrefetch(9));
  EXPECT_FALSE(cache.BeginPrefetch(9));
  EXPECT_EQ(cache.Stats().prefetch_issued, 1u);
  ASSERT_TRUE(cache.Insert(9, Bytes(16, 9), 16, 1, 0.5, /*prefetched=*/true));
  cache.EndPrefetch(9);
  // Resident blocks are never re-claimed.
  EXPECT_FALSE(cache.BeginPrefetch(9));
  EXPECT_EQ(cache.Stats().prefetch_issued, 1u);
  // The first hit on a prefetched entry counts once toward prefetch_hits.
  EXPECT_TRUE(cache.Lookup(9, 1, nullptr));
  EXPECT_TRUE(cache.Lookup(9, 1, nullptr));
  EXPECT_EQ(cache.Stats().prefetch_hits, 1u);
  EXPECT_EQ(cache.Stats().hits, 2u);
}

TEST(BlockCacheTest, MetadataOnlyEntriesCountBytes) {
  // The simulator embodiment caches null data with real byte accounting.
  BlockCache cache(100);
  ASSERT_TRUE(cache.Insert(1, nullptr, 60, 1, 0.5));
  ASSERT_TRUE(cache.Insert(2, nullptr, 40, 1, 0.9));
  EXPECT_EQ(cache.resident_bytes(), 100u);
  EXPECT_TRUE(cache.Lookup(1, 1, nullptr));
  EXPECT_FALSE(cache.Insert(3, nullptr, 10, 1, 0.1));  // colder than both
}

// --- ReplicaPromoter unit tests --------------------------------------

TEST(ReplicaPromoterTest, BudgetAccountingAndHysteresis) {
  ReplicaPromoter::Params params;
  params.budget_bytes = 1000;
  params.replica_copies = 3;
  params.promote_min_frequency = 0.1;
  params.demote_frequency = 0.02;
  ReplicaPromoter promoter(params);
  const CodecSpec rs{CodecFamilyId::kRs, 2, 2, 0};

  // rep(3) of a 300-byte block over a 600-byte EC layout: +300 bytes.
  EXPECT_EQ(ReplicaPromoter::ReplicaExtraBytes(300, 600, 3), 300u);
  // A replica cheaper than the layout charges nothing.
  EXPECT_EQ(ReplicaPromoter::ReplicaExtraBytes(100, 600, 3), 0u);

  EXPECT_FALSE(promoter.ShouldPromote(1, 0.05, 300));  // too cold
  EXPECT_TRUE(promoter.ShouldPromote(1, 0.5, 300));
  // The size gate: bandwidth-bound large blocks keep their parallel EC
  // fetch (a replica would serialize the whole block onto one site).
  ReplicaPromoter::Params gated = params;
  gated.max_block_bytes = 64 * 1024;
  ReplicaPromoter small_only(gated);
  EXPECT_TRUE(small_only.ShouldPromote(9, 0.5, 300, 64 * 1024));
  EXPECT_FALSE(small_only.ShouldPromote(9, 0.5, 300, 64 * 1024 + 1));
  promoter.RecordPromoted(1, rs, 300);
  EXPECT_TRUE(promoter.IsPromoted(1));
  EXPECT_FALSE(promoter.ShouldPromote(1, 0.5, 300));  // already promoted
  EXPECT_TRUE(promoter.ShouldPromote(2, 0.5, 700));   // exactly fits
  EXPECT_FALSE(promoter.ShouldPromote(2, 0.5, 701));  // over budget
  promoter.RecordPromoted(2, rs, 700);
  EXPECT_EQ(promoter.Stats().replica_extra_bytes, 1000u);

  // Hysteresis: a block between the thresholds neither promotes again nor
  // demotes.
  const auto freq_of = [](BlockId id) { return id == 1 ? 0.05 : 0.01; };
  const std::vector<BlockId> cold = promoter.SelectDemotions(freq_of);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(cold[0], 2u);

  const CodecSpec restored = promoter.RecordDemoted(2);
  EXPECT_EQ(restored, rs);
  EXPECT_EQ(promoter.Stats().replica_extra_bytes, 300u);
  EXPECT_EQ(promoter.Stats().blocks_demoted, 1u);
  EXPECT_THROW(promoter.RecordDemoted(2), std::out_of_range);
}

// --- LocalECStore integration ----------------------------------------

ECStoreConfig CacheConfig(std::uint64_t cache_bytes, bool prefetch,
                          std::uint64_t budget_bytes) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCMLb);
  config.num_sites = 8;
  config.k = 2;
  config.r = 2;
  config.seed = 7;
  config.cache_capacity_bytes = cache_bytes;
  config.cache_prefetch = prefetch;
  config.replica_budget_bytes = budget_bytes;
  return config;
}

TEST(CachedStoreTest, HitsServeFromCacheAndRewriteInvalidates) {
  LocalECStore store(CacheConfig(1 << 20, false, 0));
  constexpr std::size_t kBytes = 4096;
  for (BlockId id = 0; id < 6; ++id) store.Put(id, MakeBlock(kBytes, id));

  const std::vector<BlockId> ids = {0, 1, 2};
  const auto first = store.MultiGet(ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(first[i], MakeBlock(kBytes, ids[i]));
  }
  EXPECT_EQ(store.Usage().cache_hits, 0u);

  const auto second = store.MultiGet(ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(second[i], MakeBlock(kBytes, ids[i]));
  }
  EXPECT_EQ(store.Usage().cache_hits, 3u);

  // A delete + re-put under the same id gets a fresh coherence version:
  // the cached bytes must never surface again.
  ASSERT_TRUE(store.Remove(1));
  store.Put(1, MakeBlock(kBytes, 999));
  const auto after = store.MultiGet(ids);
  EXPECT_EQ(after[1], MakeBlock(kBytes, 999));

  // An explicit version bump (the move/repair rewrite path) forces the
  // next lookup to re-validate and refetch — still bit-exact.
  ASSERT_TRUE(store.state().BumpBlockVersion(0));
  const std::uint64_t invalidations_before = store.Usage().cache_invalidations;
  const auto revalidated = store.MultiGet(std::vector<BlockId>{0});
  EXPECT_EQ(revalidated[0], MakeBlock(kBytes, 0));
  EXPECT_GT(store.Usage().cache_invalidations, invalidations_before);
}

TEST(CachedStoreTest, AllHitFastPathReturnsCopies) {
  LocalECStore store(CacheConfig(1 << 20, false, 0));
  constexpr std::size_t kBytes = 2048;
  store.Put(1, MakeBlock(kBytes, 1));
  store.Put(2, MakeBlock(kBytes, 2));
  const std::vector<BlockId> ids = {1, 2};
  (void)store.MultiGet(ids);
  auto out = store.MultiGet(ids);  // fully cached
  EXPECT_EQ(store.Usage().cache_hits, 2u);
  EXPECT_EQ(out[0], MakeBlock(kBytes, 1));
  EXPECT_EQ(out[1], MakeBlock(kBytes, 2));
  // The caller owns its copy: mutating it must not poison the cache.
  out[0][0] ^= 0xFF;
  const auto again = store.MultiGet(ids);
  EXPECT_EQ(again[0], MakeBlock(kBytes, 1));
}

TEST(CachedStoreTest, PrefetchFillsCoAccessPartners) {
  LocalECStore store(CacheConfig(1 << 20, true, 0));
  constexpr std::size_t kBytes = 2048;
  store.Put(1, MakeBlock(kBytes, 1));
  store.Put(2, MakeBlock(kBytes, 2));

  // Build co-access: blocks 1 and 2 always travel together (λ = 1).
  const std::vector<BlockId> pair = {1, 2};
  for (int i = 0; i < 8; ++i) (void)store.MultiGet(pair);
  store.WaitForPrefetches();

  // Knock 2 out of the cache; a hit on 1 alone must prefetch it back.
  ASSERT_TRUE(store.block_cache()->Invalidate(2));
  (void)store.MultiGet(std::vector<BlockId>{1});
  store.WaitForPrefetches();
  EXPECT_TRUE(store.block_cache()->Contains(2));
  EXPECT_GE(store.Usage().prefetch_issued, 1u);

  // The prefetched entry now serves a real request, bit-exact.
  const auto out = store.MultiGet(pair);
  EXPECT_EQ(out[1], MakeBlock(kBytes, 2));
  EXPECT_GE(store.Usage().prefetch_hits, 1u);
}

// Satellite regression (ISSUE: repair/scrub rewrite must bump the block
// version): corrupt a chunk, scrub, and the cached decoded bytes must
// re-validate rather than serve stale.
TEST(CachedStoreTest, ScrubRewriteBumpsVersionAndInvalidates) {
  LocalECStore store(CacheConfig(1 << 20, false, 0));
  constexpr std::size_t kBytes = 4096;
  store.Put(1, MakeBlock(kBytes, 1));
  (void)store.MultiGet(std::vector<BlockId>{1});
  ASSERT_TRUE(store.block_cache()->Contains(1));

  const std::uint64_t version_before = store.state().BlockVersion(1);
  const ChunkLocation loc = store.state().GetBlock(1).locations[0];
  ASSERT_TRUE(store.node(loc.site).CorruptChunk(1, loc.chunk));
  ASSERT_GE(store.ScrubOnce(), 1u);

  // The rewrite bumped the coherence version and eagerly evicted the
  // cached decode.
  EXPECT_GT(store.state().BlockVersion(1), version_before);
  EXPECT_FALSE(store.block_cache()->Contains(1));
  EXPECT_GE(store.Usage().cache_invalidations, 1u);

  // The next read re-validates, refetches, and is bit-exact.
  const auto out = store.MultiGet(std::vector<BlockId>{1});
  EXPECT_EQ(out[0], MakeBlock(kBytes, 1));
}

TEST(CachedStoreTest, PromoteDemoteWithinBudgetSurvivesSiteFailure) {
  ECStoreConfig config = CacheConfig(0, false, /*budget=*/1 << 20);
  config.co_access_window = 200;  // small window so demotion can observe
  config.promote_min_frequency = 0.05;
  config.demote_frequency = 0.01;
  config.replica_copies = 3;
  LocalECStore store(config);
  constexpr std::size_t kBytes = 4096;
  // Enough blocks that the cooling traffic below keeps every individual
  // block under the promote threshold (each gets ~200/39 ≈ 5 of the
  // 200-access window, frequency ≈ 0.026 < 0.05).
  constexpr BlockId kBlocks = 40;
  for (BlockId id = 0; id < kBlocks; ++id) store.Put(id, MakeBlock(kBytes, id));

  // Make block 0 hot, then run a movement round: the promoter should
  // rewrite it to rep(2) within the budget.
  for (int i = 0; i < 40; ++i) (void)store.MultiGet(std::vector<BlockId>{0});
  store.RunMovementRound();

  const PromoterStats promoted = store.promoter()->Stats();
  ASSERT_GE(promoted.blocks_promoted, 1u);
  EXPECT_LE(promoted.replica_extra_bytes, config.replica_budget_bytes);
  ASSERT_TRUE(store.promoter()->IsPromoted(0));
  const BlockInfo replicated = store.state().GetBlock(0);
  EXPECT_EQ(replicated.codec.family, CodecFamilyId::kReplication);
  ASSERT_EQ(replicated.locations.size(), 3u);

  // Zero stale reads across the rewrite, and the replica layout survives
  // losing one of its sites outright.
  EXPECT_EQ(store.Get(0), MakeBlock(kBytes, 0));
  store.FailSite(replicated.locations[0].site);
  EXPECT_EQ(store.Get(0), MakeBlock(kBytes, 0));
  store.RecoverSite(replicated.locations[0].site);

  // Cool the block: slide the co-access window past its accesses, then
  // demote back to the original codec family.
  for (int i = 0; i < 300; ++i) {
    (void)store.MultiGet(std::vector<BlockId>{1 + (i % (kBlocks - 1))});
  }
  store.RunMovementRound();
  EXPECT_GE(store.promoter()->Stats().blocks_demoted, 1u);
  EXPECT_FALSE(store.promoter()->IsPromoted(0));
  const BlockInfo demoted = store.state().GetBlock(0);
  EXPECT_EQ(demoted.codec.family, CodecFamilyId::kRs);
  EXPECT_EQ(store.Get(0), MakeBlock(kBytes, 0));
  EXPECT_EQ(store.promoter()->Stats().replica_extra_bytes, 0u);
}

}  // namespace
}  // namespace ecstore
