// Property tests for the log-linear histogram: Quantile and Merge are
// checked against exact quantiles of the raw (sorted) sample set, within
// the documented 1/kSubBuckets relative-error bound — including the
// heavy-tailed and merged-shard inputs the tail model (DESIGN.md §13)
// feeds it.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"

namespace ecstore {
namespace {

// Matches the private Histogram::kSubBuckets (kSubBucketBits = 7). The
// header documents the quantile error bound as 1/kSubBuckets.
constexpr double kRelativeErrorBound = 1.0 / 128.0;

// Exact q-quantile under the histogram's definition: the
// max(1, ceil(q*n))-th smallest sample.
std::int64_t ExactQuantile(std::vector<std::int64_t> sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

void ExpectQuantilesWithinBound(const Histogram& h,
                                std::vector<std::int64_t> samples,
                                const char* label) {
  std::sort(samples.begin(), samples.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const std::int64_t exact = ExactQuantile(samples, q);
    const std::int64_t got = h.Quantile(q);
    // Midpoint representation adds at most half a bucket of error; the
    // +1 absolute slack covers integer midpoint rounding in the narrow
    // low buckets.
    const double tol =
        std::max(1.0, static_cast<double>(exact) * kRelativeErrorBound);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(exact), tol)
        << label << " q=" << q;
  }
}

TEST(HistogramPropertyTest, UniformSamplesMatchExactQuantiles) {
  Rng rng(101);
  Histogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(2'000'000));
    samples.push_back(v);
    h.Record(v);
  }
  ExpectQuantilesWithinBound(h, samples, "uniform");
}

TEST(HistogramPropertyTest, SmallValueSamplesAreExact) {
  // Values below the sub-bucket count map 1:1 to buckets: quantiles must
  // equal the exact order statistics, not just approximate them.
  Rng rng(102);
  Histogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(128));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), ExactQuantile(samples, q)) << "q=" << q;
  }
}

TEST(HistogramPropertyTest, HeavyTailedSamplesMatchExactQuantiles) {
  // Bounded Pareto with alpha ~ 1: most mass near the floor, a tail
  // stretching five orders of magnitude — the service-time shape the
  // tail model exists for.
  Rng rng(103);
  const BoundedParetoSampler pareto(1.05, 100.0, 50'000'000.0);
  Histogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int64_t>(pareto.SampleInt(rng));
    samples.push_back(v);
    h.Record(v);
  }
  ExpectQuantilesWithinBound(h, samples, "pareto");
}

TEST(HistogramPropertyTest, LogNormalWithStallsMatchesExactQuantiles) {
  // The simulator's service-time shape: lognormal body plus rare 20x
  // stalls (a bimodal tail, the adaptive-delta trigger).
  Rng rng(104);
  Histogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextLogNormal(8.0, 0.45);  // ~3 ms in microseconds.
    if (rng.NextDouble() < 0.02) v *= 20;
    const auto iv = static_cast<std::int64_t>(v);
    samples.push_back(iv);
    h.Record(iv);
  }
  ExpectQuantilesWithinBound(h, samples, "lognormal+stalls");
}

TEST(HistogramPropertyTest, MergedShardsMatchExactQuantiles) {
  // Shard the sample stream over 8 histograms (as per-site windows do),
  // merge, and check the merged quantiles against the full sorted set.
  Rng rng(105);
  const BoundedParetoSampler pareto(1.2, 50.0, 10'000'000.0);
  std::vector<Histogram> shards(8);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 24000; ++i) {
    const auto v = static_cast<std::int64_t>(pareto.SampleInt(rng));
    samples.push_back(v);
    shards[i % shards.size()].Record(v);
  }
  Histogram merged;
  for (const Histogram& s : shards) merged.Merge(s);
  ASSERT_EQ(merged.count(), samples.size());
  ExpectQuantilesWithinBound(merged, samples, "merged-shards");
}

TEST(HistogramPropertyTest, MergeIsExactlyEquivalentToDirectRecording) {
  // Merging is bucket-wise addition, so a merged histogram must agree
  // with direct recording bit-for-bit, not just within the error bound.
  Rng rng(106);
  Histogram direct;
  std::vector<Histogram> shards(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(5'000'000));
    direct.Record(v);
    shards[i % shards.size()].Record(v);
  }
  Histogram merged;
  for (const Histogram& s : shards) merged.Merge(s);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_DOUBLE_EQ(merged.Mean(), direct.Mean());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.Quantile(q), direct.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramPropertyTest, FractionAboveMatchesExactCounts) {
  Rng rng(107);
  Histogram h;
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.NextBounded(1'000'000));
    samples.push_back(v);
    h.Record(v);
  }
  for (std::int64_t threshold : {0LL, 100LL, 5'000LL, 250'000LL, 900'000LL}) {
    // Bucket resolution can misclassify samples within one bucket of the
    // threshold; the induced error is bounded by the relative bucket
    // width around the threshold.
    std::size_t lo = 0, hi = 0;
    const double band = std::max(
        1.0, static_cast<double>(threshold) * 2 * kRelativeErrorBound);
    for (std::int64_t v : samples) {
      if (static_cast<double>(v) > threshold + band) ++lo;
      if (static_cast<double>(v) > threshold - band) ++hi;
    }
    const double got = h.FractionAbove(threshold);
    const auto n = static_cast<double>(samples.size());
    EXPECT_GE(got, static_cast<double>(lo) / n - 1e-12) << "t=" << threshold;
    EXPECT_LE(got, static_cast<double>(hi) / n + 1e-12) << "t=" << threshold;
  }
}

}  // namespace
}  // namespace ecstore
