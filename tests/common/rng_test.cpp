#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

namespace ecstore {
namespace {

TEST(SplitMix64Test, ProducesKnownSequenceShape) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(43);
  EXPECT_NE(SplitMix64(42).Next(), c.Next());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, 0.1 * kSamples / kBound);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / 100000, 5.0, 0.15);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, LogNormalMedianIsExpMu) {
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.NextLogNormal(1.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], std::exp(1.0), 0.1);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// --- Zipf -----------------------------------------------------------------

TEST(ZipfTest, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfTest, SingleElementAlwaysOne) {
  ZipfSampler z(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Sample(rng), 1u);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler z(1000, 1.0);
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const auto v = z.Sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
  }
}

// The defining property of Zipf: P(rank) proportional to rank^-s.
TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  constexpr std::uint64_t kN = 100;
  constexpr double kS = 1.0;
  ZipfSampler z(kN, kS);
  Rng rng(41);
  std::vector<int> counts(kN + 1, 0);
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) ++counts[z.Sample(rng)];

  double harmonic = 0;
  for (std::uint64_t r = 1; r <= kN; ++r) harmonic += std::pow(r, -kS);
  for (std::uint64_t r : {1ull, 2ull, 5ull, 10ull, 50ull}) {
    const double expected = std::pow(static_cast<double>(r), -kS) / harmonic;
    const double observed = counts[r] / static_cast<double>(kSamples);
    EXPECT_NEAR(observed, expected, expected * 0.1) << "rank " << r;
  }
}

TEST(ZipfTest, HigherExponentIsMoreSkewed) {
  constexpr std::uint64_t kN = 1000;
  Rng rng(43);
  ZipfSampler mild(kN, 0.5), steep(kN, 2.0);
  int mild_top = 0, steep_top = 0;
  for (int i = 0; i < 20000; ++i) {
    mild_top += (mild.Sample(rng) == 1);
    steep_top += (steep.Sample(rng) == 1);
  }
  EXPECT_GT(steep_top, mild_top * 2);
}

TEST(ZipfTest, LargeKeySpaceWorks) {
  ZipfSampler z(1000000, 1.0);  // Paper-scale 1M keyspace.
  Rng rng(47);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 10000; ++i) max_seen = std::max(max_seen, z.Sample(rng));
  EXPECT_LE(max_seen, 1000000u);
  EXPECT_GT(max_seen, 1000u);  // The tail is actually reachable.
}

// --- Bounded Pareto --------------------------------------------------------

TEST(BoundedParetoTest, RejectsBadParameters) {
  EXPECT_THROW(BoundedParetoSampler(0.0, 1, 10), std::invalid_argument);
  EXPECT_THROW(BoundedParetoSampler(1.0, 0, 10), std::invalid_argument);
  EXPECT_THROW(BoundedParetoSampler(1.0, 10, 10), std::invalid_argument);
}

TEST(BoundedParetoTest, SamplesWithinBounds) {
  BoundedParetoSampler p(1.2, 2.0, 5000.0);
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) {
    const double v = p.Sample(rng);
    ASSERT_GE(v, 2.0);
    ASSERT_LE(v, 5000.0);
  }
}

TEST(BoundedParetoTest, EmpiricalMedianMatchesAnalytic) {
  BoundedParetoSampler p(1.1, 1.0, 100000.0);
  Rng rng(59);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(p.Sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], p.Median(), p.Median() * 0.1);
}

// --- Weighted sampling ------------------------------------------------------

TEST(WeightedSampleTest, ReturnsRequestedCount) {
  Rng rng(61);
  std::vector<double> w = {1, 2, 3, 4, 5};
  EXPECT_EQ(WeightedSampleWithoutReplacement(rng, w, 3).size(), 3u);
  EXPECT_EQ(WeightedSampleWithoutReplacement(rng, w, 10).size(), 5u);
  EXPECT_TRUE(WeightedSampleWithoutReplacement(rng, w, 0).empty());
}

TEST(WeightedSampleTest, NoDuplicates) {
  Rng rng(67);
  std::vector<double> w(20, 1.0);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = WeightedSampleWithoutReplacement(rng, w, 10);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
  }
}

TEST(WeightedSampleTest, SkipsZeroWeights) {
  Rng rng(71);
  std::vector<double> w = {0.0, 1.0, 0.0, 1.0};
  for (int trial = 0; trial < 50; ++trial) {
    auto s = WeightedSampleWithoutReplacement(rng, w, 2);
    for (auto i : s) EXPECT_TRUE(i == 1 || i == 3);
  }
}

TEST(WeightedSampleTest, HeavierWeightsChosenMoreOften) {
  Rng rng(73);
  std::vector<double> w = {1.0, 10.0};
  int heavy_first = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto s = WeightedSampleWithoutReplacement(rng, w, 1);
    ASSERT_EQ(s.size(), 1u);
    heavy_first += (s[0] == 1);
  }
  // P(heavy first) = 10/11 ~ 0.909.
  EXPECT_NEAR(heavy_first / 2000.0, 10.0 / 11.0, 0.05);
}

}  // namespace
}  // namespace ecstore
