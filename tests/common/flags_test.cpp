#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace ecstore {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesKeyValue) {
  Flags f = Make({"--sites=32", "--exponent=1.5", "--name=ycsb"});
  EXPECT_EQ(f.GetInt("sites", 0), 32);
  EXPECT_DOUBLE_EQ(f.GetDouble("exponent", 0), 1.5);
  EXPECT_EQ(f.GetString("name", ""), "ycsb");
}

TEST(FlagsTest, DefaultsWhenMissing) {
  Flags f = Make({});
  EXPECT_EQ(f.GetInt("sites", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 2.5), 2.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_TRUE(f.GetBool("b", true));
  EXPECT_FALSE(f.Has("sites"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Make({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagsTest, BoolSpellings) {
  Flags f = Make({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
  EXPECT_FALSE(f.GetBool("e", true));
}

TEST(FlagsTest, IgnoresPositionalArgs) {
  Flags f = Make({"positional", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
  EXPECT_FALSE(f.Has("positional"));
}

TEST(FlagsTest, NegativeNumbers) {
  Flags f = Make({"--delta=-3", "--w=-0.5"});
  EXPECT_EQ(f.GetInt("delta", 0), -3);
  EXPECT_DOUBLE_EQ(f.GetDouble("w", 0), -0.5);
}

TEST(FlagsTest, LastValueWins) {
  Flags f = Make({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace ecstore
