#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecstore {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.Quantile(0.0), 42);
  EXPECT_EQ(h.Quantile(0.5), 42);
  EXPECT_EQ(h.Quantile(1.0), 42);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int v = 0; v < 100; ++v) h.Record(v);
  // Values below the sub-bucket count are recorded exactly. With 100
  // observations 0..99, the q-quantile is the ceil(q*100)-th smallest.
  EXPECT_EQ(h.Quantile(0.0), 0);
  EXPECT_EQ(h.Percentile(50), 49);
  EXPECT_EQ(h.Percentile(99), 98);
  EXPECT_EQ(h.Percentile(100), 99);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, LargeValuesWithinRelativeError) {
  Histogram h;
  const std::int64_t v = 1'000'000;  // 1 second in microseconds.
  h.Record(v);
  const std::int64_t got = h.Quantile(0.5);
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(v), v * 0.01);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.Record(static_cast<std::int64_t>(rng.NextBounded(1000000)));
  std::int64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const std::int64_t v = h.Quantile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

TEST(HistogramTest, UniformQuantilesAccurate) {
  Histogram h;
  for (int i = 1; i <= 100000; ++i) h.Record(i);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 1500.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99000.0, 2000.0);
}

TEST(HistogramTest, MeanAccumulates) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, RecordManyEquivalentToLoop) {
  Histogram a, b;
  a.RecordMany(500, 10);
  for (int i = 0; i < 10; ++i) b.Record(500);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.Quantile(0.5), b.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 1000; ++i) a.Record(100);
  for (int i = 0; i < 1000; ++i) b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_NEAR(static_cast<double>(a.max()), 10000.0, 0.0);
  EXPECT_NEAR(a.Mean(), 5050.0, 1.0);
  // Median should be in the low cluster or at its boundary.
  EXPECT_LE(a.Quantile(0.49), 110);
  EXPECT_GE(a.Quantile(0.51), 9900);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a, b;
  b.Record(7);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.9), 0);
}

TEST(HistogramTest, CdfReturnsRequestedPoints) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const auto cdf = h.Cdf({80, 90, 99, 100});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_EQ(cdf[0].first, 80);
  EXPECT_LE(cdf[0].second, cdf[3].second);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.ConfidenceHalfWidth95(), 0.0);
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-9);  // Sample variance.
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat a, b, all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10;
    if (i % 2) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
}

TEST(RunningStatTest, ConfidenceShrinksWithSamples) {
  RunningStat small, large;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) small.Add(rng.NextGaussian());
  for (int i = 0; i < 1000; ++i) large.Add(rng.NextGaussian());
  EXPECT_GT(small.ConfidenceHalfWidth95(), large.ConfidenceHalfWidth95());
}

}  // namespace
}  // namespace ecstore
